//! The tenant-aware sharded serving subsystem: a worker-pool layer that fans
//! a stream of MIS solve requests across N shards with deterministic stream
//! semantics, shard routing by tenant, per-tenant admission control and a
//! choice of ordered or streaming collection.
//!
//! # Architecture
//!
//! ```text
//!          admission (token bucket + in-flight caps, per tenant)
//!                    │ admitted            route (RoundRobin / TenantAffinity / LeastQueued)
//! client (tickets) ──┤          submit() ──► bounded queue ──► shard 0: BatchRunner(Workspace 0)─┐ collect_ordered()
//!                    │          submit() ──► bounded queue ──► shard 1: BatchRunner(Workspace 1)─┼─►      or
//!                    │ denied   submit() ──► bounded queue ──► shard 2: BatchRunner(Workspace 2)─┘ collect_streaming()
//!                    ▼                                ▲                        │ read-only
//!            AdmissionDenied outcome                  │                 Arc<ResidentRegistry>
//! ```
//!
//! A [`ShardedRunner`] owns N long-lived worker threads (hosted by
//! [`pram::pool::spawn_worker`]). Each worker is exactly a
//! [`BatchRunner`] in a loop — the single-shard
//! special case *is* the batch runner — with its own
//! [`Workspace`] checked out of a
//! [`WorkspacePool`] by shard index, so parked engines
//! and warmed buffers stay **shard-local** across serve generations.
//! Admitted requests are distributed over per-shard **bounded** queues by the
//! configured [`RoutePolicy`]: [`ShardedRunner::submit`] blocks once the
//! target shard's queue is full (backpressure), while results flow back over
//! an unbounded channel so workers never block.
//!
//! Resident graphs live in a [`ResidentRegistry`] — **epoch-versioned and
//! mutable mid-stream**. Each resident graph carries an append-only
//! [`GraphEdit`] log; [`ResidentRegistry::apply`] bumps the graph's
//! [`Epoch`] and publishes the next immutable [`ResidentSnapshot`]
//! (copy-on-write: older snapshots are shared untouched, so mutation never
//! blocks or invalidates readers). Workers only ever read snapshots (`&self`
//! induction — see the concurrency section of [`hypergraph::ActiveEngine`]),
//! deriving per-query sub-instances into their own shard-local engines.
//!
//! # Tenancy
//!
//! Every [`SolveRequest`] carries a [`TenantId`]. Three things key off it:
//!
//! * **Routing** — [`RoutePolicy::TenantAffinity`] sends a tenant's whole
//!   stream to one stable shard (a platform-independent hash of the id), so
//!   its resident/induced queries rewarm the *same* shard-local parked
//!   engines generation after generation. The win is observable through the
//!   pool's per-tenant rewarm report ([`WorkspacePool::tenant_rewarms`]).
//! * **Admission** — [`AdmissionConfig`] layers per-tenant token buckets and
//!   in-flight caps on top of the bounded queues. A request over quota is
//!   *not* an error path: it consumes a ticket and comes back through the
//!   normal collection machinery as an outcome with
//!   [`SolveError::AdmissionDenied`] — rejection as data, never a panic and
//!   never a silently dropped ticket.
//! * **Accounting** — [`ShardedRunner::stats`] reports submissions,
//!   admissions, denials and deliveries per tenant and routing per shard in
//!   a [`ServeStats`].
//!
//! # Collection modes
//!
//! [`ShardedRunner::collect_ordered`] delivers in submission-ticket order
//! regardless of which shard finished first (buffering out-of-order
//! arrivals). [`ShardedRunner::collect_streaming`] is the latency-optimal
//! dual: an iterator yielding outcomes **as they complete**, out of order,
//! each still carrying its ticket. The two modes interoperate on one runner
//! — a later ordered collect skips tickets already streamed.
//!
//! # Determinism contract
//!
//! Every **admitted** request's outcome is a **pure function of `(snapshot,
//! algorithm, seed)`**: the per-request RNG is derived from
//! [`SolveRequest::seed`], the workspace never influences results (the PR-3
//! contract), and the snapshot a request runs against is fixed at
//! submission time — [`SolveRequest::pin`] defaults to [`EpochPin::Latest`],
//! which [`ShardedRunner::submit`] resolves to a concrete [`Epoch`] before
//! the request is enqueued, so a mutation landing while the request waits in
//! a shard queue can never retarget it. The resolved epoch is echoed in
//! [`SolveOutcome::epoch`] and participates in the fingerprint. Routing
//! policy, shard count, queue depth, scheduling, thread count and collection
//! mode may change wall time and *completion order* but never a single
//! independent set, trace or cost total — `tests/serve.rs` and
//! `tests/registry.rs` pin outcomes (including interleaved mutate/query
//! streams) across all three policies × 1/2/4/8 shards × both collection
//! modes against the sequential
//! [`BatchRunner::solve`](crate::batch::BatchRunner::solve) path.
//!
//! Because snapshots are reproducible from the edit log — epoch `k` is
//! exactly epoch `0` plus the log prefix of length
//! [`ResidentSnapshot::log_len`], and [`hypergraph::edit::apply_edits`]
//! composes across any prefix split — the full contract is: outcomes are a
//! pure function of **`(snapshot, log-prefix, algorithm, seed)`**, and
//! replaying any prefix of a resident's edit log from any earlier snapshot
//! reproduces every pinned outcome byte-for-byte.
//!
//! # Durability contract
//!
//! The edit log *is* a write-ahead log, and the registry can prove it:
//! [`ResidentRegistry::persist`] writes a graph's `(base snapshot, edit
//! log)` to the checksummed, versioned on-disk format of
//! [`hypergraph::io::write_wal`] (atomically — write-temp-then-rename), and
//! [`ResidentRegistry::restore`] replays it through the ordinary
//! [`apply`](ResidentRegistry::apply) path to reproduce a byte-identical
//! registry entry: same epoch numbers, same
//! [`log_len`](ResidentSnapshot::log_len) watermarks, same solve
//! fingerprints for every epoch-pinned and latest-pinned query. The
//! determinism contract is therefore also **cross-process**: `(persisted
//! snapshot₀ + log prefix, algorithm, seed)` fixes the outcome on whatever
//! machine replays the WAL. A torn tail — a crash mid-append — is detected
//! by per-record checksums and truncated at the last whole record (an epoch
//! boundary, since the WAL stores one record per edit batch), never parsed
//! into garbage; see [`hypergraph::io::read_wal`].
//!
//! # Storage tiers and spill
//!
//! A resident graph's base CSR arena lives in one of three tiers, all
//! serving byte-identical outcomes (the mapped-vs-owned fingerprint suites
//! pin this across every algorithm):
//!
//! * **Owned** — [`ResidentRegistry::register`] with an in-memory
//!   [`Hypergraph`]: the arena is heap `Vec`s, built by parsing or
//!   generation. Cold-start cost is the full parse + build.
//! * **WAL-restored** — [`ResidentRegistry::restore`]: the base graph is
//!   decoded from the WAL (owned arena again) and the edit log replayed
//!   batch-by-batch, reproducing every epoch. Cold-start cost scales with
//!   the log.
//! * **Mapped** — [`ResidentRegistry::persist_snapshot`] writes the current
//!   graph as a binary `HGCSR` checkpoint; [`ResidentRegistry::open_mapped`]
//!   re-opens it **zero-copy**: the four CSR arrays are served straight out
//!   of one read-only file mapping shared by every shard (validated
//!   structurally up front — a corrupt file is a parse error, never a
//!   crash; see [`hypergraph::io::open_mapped`]). Engine construction reads
//!   the mapped slices directly, so first-query latency is the engine build
//!   alone — the `coldstart` bench gates it at ≥ 5× faster than
//!   parse + build on the largest workloads.
//!
//! The tiers compose: a mapped graph is mutable like any other —
//! [`apply`](ResidentRegistry::apply) layers the epoch log *on top of* the
//! mapped base (mmap'd base + in-memory log tail), with copy-on-write
//! snapshots exactly as for owned graphs.
//! [`storage_kind`](hypergraph::HypergraphView::storage_kind) and
//! [`Hypergraph::bytes_resident`] report where an arena lives and what it
//! costs ([`hypergraph::HypergraphStats`] carries both).
//!
//! On top of the mapped tier sits an out-of-core policy:
//! [`ResidentRegistry::with_spill`] bounds the total resident base-arena
//! bytes. When the pool exceeds [`SpillPolicy::max_resident_bytes`], the
//! registry drops the snapshots of least-recently-touched **spillable**
//! graphs — mapped, never mutated (an edit log pins a graph: its epochs
//! exist nowhere on disk) — and transparently pages them back in from their
//! source files on the next touch. Spills and page-ins are counted per
//! graph ([`ResidentRegistry::spills`] / [`page_ins`](ResidentRegistry::page_ins))
//! and mirrored into the per-shard pram spill ledgers on the request path
//! ([`WorkspacePool::graph_spill_totals`]), next to the eviction ledger. A
//! graph whose source file has meanwhile disappeared answers requests with
//! [`SolveError::SnapshotUnavailable`] — an outcome, not a panic.
//!
//! # Retention and compaction
//!
//! By default every snapshot is retained (the `keep-all` of
//! [`RetentionPolicy::default`]), so any epoch stays addressable forever at
//! memory cost proportional to the version chain. A registry built with
//! [`ResidentRegistry::with_retention`] and `keep_last: Some(k)` instead
//! drops snapshot `Arc`s below the **retention floor** — only the base
//! epoch (always), and the latest `k` epochs stay resident, bounding the
//! snapshot count by `k + 1` regardless of how many epochs accumulate,
//! while the *log stays complete*, so evicted epochs remain replayable from disk
//! or via [`edit_log`](ResidentRegistry::edit_log). Pinning an epoch below
//! the floor ([`EpochPin::At`]) answers with
//! [`SolveError::EpochEvicted`] — outcome data carrying the floor, never a
//! panic — and is **distinct from** [`SolveError::UnknownEpoch`], which
//! keeps meaning "never reached". In-flight requests are safe by
//! construction: [`ShardedRunner::submit`] resolves the pin to a snapshot
//! `Arc` *at submission time*, so an eviction (or compaction) landing while
//! the request waits in a shard queue cannot change its answer — exactly
//! the MVCC rule that a reader's snapshot stays alive for as long as the
//! reader holds it.
//!
//! [`ResidentRegistry::compact`] re-bases a graph's history onto its
//! current snapshot: the log empties, the current epoch becomes the base
//! epoch (epoch *numbers* are preserved — existing pins keep their
//! meaning), and earlier epochs become [`SolveError::EpochEvicted`]. Use it
//! for graphs whose tenants never pin history; persist first if the history
//! should survive.
//!
//! Admission decisions are themselves deterministic for a fixed
//! submit/collect call sequence under `RoundRobin` and `TenantAffinity`
//! (token buckets refill on *logical* time — submission attempts — and
//! in-flight counts change only at submit and delivery, both caller-driven).
//! `LeastQueued` routes by observed queue depth and is therefore
//! scheduling-dependent in *placement* (outcomes are still invariant).
//!
//! ```
//! use hypergraph_mis::serve::{
//!     Algorithm, Epoch, EpochPin, ResidentRegistry, RoutePolicy, ServeConfig, ShardedRunner,
//!     SolveRequest, Target, TenantId,
//! };
//! use hypergraph_mis::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use std::sync::Arc;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let mut registry = ResidentRegistry::new();
//! let resident = registry.register(generate::paper_regime(&mut rng, 200, 40, 8));
//! let registry = Arc::new(registry);
//!
//! let mut runner = ShardedRunner::new(
//!     Arc::clone(&registry),
//!     &ServeConfig {
//!         shards: 2,
//!         queue_depth: 16,
//!         threads_per_shard: Some(1),
//!         route: RoutePolicy::TenantAffinity,
//!         ..ServeConfig::default()
//!     },
//! );
//! for seed in 0..6u64 {
//!     // `EpochPin::Latest` (the default) is resolved to a concrete epoch
//!     // at submit time.
//!     runner.submit(
//!         SolveRequest::for_graph(resident)
//!             .seed(seed)
//!             .tenant(TenantId(seed % 2))
//!             .build(),
//!     );
//! }
//! // Mutate mid-stream: the six in-flight requests stay pinned to epoch 0.
//! let bumped = registry
//!     .apply(resident, &[GraphEdit::GrowVertices(8)])
//!     .unwrap();
//! assert_eq!(bumped, Epoch(1));
//! let outcomes = runner.collect_ordered(6);
//! assert_eq!(outcomes.len(), 6);
//! let pinned = registry.snapshot_at(resident, Epoch(0)).unwrap();
//! for (i, out) in outcomes.iter().enumerate() {
//!     assert_eq!(out.ticket, i as u64);
//!     assert_eq!(out.epoch, Some(Epoch(0)));
//!     assert!(verify_mis(pinned.graph(), &out.independent_set).is_ok());
//! }
//! let stats = runner.stats();
//! assert_eq!(stats.per_tenant.len(), 2);
//! assert!(stats.per_tenant.iter().all(|t| t.denied() == 0));
//! ```

use crate::batch::BatchRunner;
use hypergraph::edit::{apply_edits, EditError, GraphEdit};
use hypergraph::io::{ParseError, ReadError};
use hypergraph::{ActiveHypergraph, Hypergraph, VertexId};
use mis_core::linear::LinearError;
use mis_core::prelude::*;
use pram::cost::CostTracker;
use pram::{Workspace, WorkspacePool};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

/// Identifies the tenant a [`SolveRequest`] belongs to.
///
/// The id is caller-chosen and opaque to the serving layer; it drives
/// affinity routing ([`RoutePolicy::TenantAffinity`]), admission control
/// ([`AdmissionConfig`]) and per-tenant accounting ([`ServeStats`],
/// [`WorkspacePool::tenant_rewarms`]). It never influences a solve's result
/// — outcomes stay pure functions of `(graph, algorithm, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u64);

/// How a [`ShardedRunner`] assigns admitted requests to worker shards.
///
/// Routing never changes an outcome — only *which shard* computes it and
/// therefore wall time and completion order. See the
/// [determinism contract](self#determinism-contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// `ticket % shards` — the PR-4 behavior and the default. Deterministic
    /// for a fixed stream.
    #[default]
    RoundRobin,
    /// A stable, platform-independent hash of the [`TenantId`] picks the
    /// tenant's home shard: all of a tenant's requests land on one shard, so
    /// its queries rewarm the same shard-local parked engines in the
    /// [`WorkspacePool`]. Deterministic for a fixed stream.
    TenantAffinity,
    /// Each request goes to the shard with the fewest requests currently
    /// queued or executing (ties break to the lowest shard index). Placement
    /// is scheduling-dependent — outcomes still are not.
    LeastQueued,
}

impl RoutePolicy {
    /// Short stable name (used in stats, logs and bench tables).
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round_robin",
            RoutePolicy::TenantAffinity => "tenant_affinity",
            RoutePolicy::LeastQueued => "least_queued",
        }
    }
}

/// The stable tenant → shard map behind [`RoutePolicy::TenantAffinity`]:
/// SplitMix64 on the tenant id, reduced mod the shard count. Pure integer
/// arithmetic — identical on every platform and every run, so a replayed
/// stream lands on the same shards.
pub fn affinity_shard(tenant: TenantId, shards: usize) -> usize {
    let mut z = tenant.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// A per-tenant admission quota: a token bucket over *logical* time plus an
/// optional in-flight cap. See [`AdmissionConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Token-bucket capacity; also the initial fill when the runner first
    /// sees the tenant. Every admitted request consumes one token.
    pub burst: u64,
    /// One token refills per this many [`submit`](ShardedRunner::submit)
    /// calls observed by the runner (*any* tenant's — logical time, so
    /// admission stays replay-deterministic; wall clocks never participate).
    /// `0` disables refill: the tenant gets exactly `burst` admissions.
    pub refill_every: u64,
    /// Maximum admitted-but-not-yet-collected requests. A submit over the
    /// cap is denied with [`DenyReason::InFlightCap`]. `None` = uncapped.
    pub max_in_flight: Option<u64>,
}

impl TenantQuota {
    /// An unlimited quota (admits everything) — useful as an explicit
    /// override when [`AdmissionConfig::default_quota`] restricts tenants.
    pub fn unlimited() -> Self {
        TenantQuota {
            burst: u64::MAX,
            refill_every: 0,
            max_in_flight: None,
        }
    }
}

/// Per-tenant admission control for a [`ShardedRunner`].
///
/// The default admits everything (no quotas — PR-4 behavior). A tenant's
/// effective quota is its [`per_tenant`](Self::per_tenant) entry if present,
/// else [`default_quota`](Self::default_quota), else unlimited. Denials are
/// outcomes, not errors: see [`SolveError::AdmissionDenied`].
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Quota applied to tenants without a [`per_tenant`](Self::per_tenant)
    /// entry. `None` = unlimited.
    pub default_quota: Option<TenantQuota>,
    /// Explicit per-tenant quotas (first match wins).
    pub per_tenant: Vec<(TenantId, TenantQuota)>,
}

impl AdmissionConfig {
    /// The effective quota for `tenant` (`None` = unlimited).
    pub fn quota_for(&self, tenant: TenantId) -> Option<TenantQuota> {
        self.per_tenant
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|&(_, q)| q)
            .or(self.default_quota)
    }
}

/// Why an admission-controlled request was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// The tenant's token bucket was empty.
    QuotaExhausted,
    /// The tenant was at its in-flight cap
    /// ([`TenantQuota::max_in_flight`]).
    InFlightCap,
}

/// Handle to a graph registered in a [`ResidentRegistry`]. The handle
/// remembers *which* registry minted it (a process-unique tag), so an id
/// from one registry can never silently resolve against another — a foreign
/// id is [`SolveError::UnknownGraph`] on the request path and a panic on the
/// direct accessors, never another tenant's graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId {
    registry: u64,
    index: usize,
}

impl GraphId {
    /// The `(registry tag, index)` pair the wire codec transmits. A decoded
    /// pair that does not name a graph in the serving registry resolves to
    /// [`SolveError::UnknownGraph`] on the request path, so round-tripping
    /// foreign ids is safe — they can name, but never alias, a graph.
    pub(crate) fn wire_parts(self) -> (u64, u64) {
        (self.registry, self.index as u64)
    }

    /// Rebuilds a handle from its wire parts (see
    /// [`wire_parts`](Self::wire_parts)).
    pub(crate) fn from_wire_parts(registry: u64, index: u64) -> Self {
        GraphId {
            registry,
            index: index as usize,
        }
    }
}

/// A resident graph's version number: epoch 0 is the graph as registered,
/// and every successful [`ResidentRegistry::apply`] bumps it by one. Epoch
/// `k` corresponds to the prefix of the graph's edit log that produced it
/// (see [`ResidentSnapshot::log_len`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

/// Which epoch of a resident graph a [`SolveRequest`] runs against.
///
/// `Latest` is resolved to a concrete epoch **at submission time** — by
/// [`ShardedRunner::submit`] before the request is enqueued, or by
/// [`BatchRunner::solve`](crate::batch::BatchRunner::solve) as it executes —
/// so an in-flight request is never retargeted by a mutation that lands
/// while it waits in a shard queue. The resolved epoch is echoed back in
/// [`SolveOutcome::epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpochPin {
    /// The graph's current epoch at the moment the request is submitted.
    #[default]
    Latest,
    /// A specific epoch; a value the graph has never reached comes back as
    /// [`SolveError::UnknownEpoch`], one it reached but whose snapshot the
    /// retention policy (or a [`compact`](ResidentRegistry::compact))
    /// dropped as [`SolveError::EpochEvicted`].
    At(Epoch),
}

/// One immutable version of a resident graph: the [`Hypergraph`] at a given
/// [`Epoch`] plus the prebuilt induction engine derived from it. Snapshots
/// are shared (`Arc`) between the registry, in-flight requests and callers,
/// so a mutation can never invalidate a pinned query — old epochs stay
/// answerable as long as anything references them.
#[derive(Debug)]
pub struct ResidentSnapshot {
    epoch: Epoch,
    log_len: usize,
    // Graph and engine are separately Arc'd so compaction can re-base a
    // snapshot (same graph, log_len 0) without rebuilding either.
    graph: Arc<Hypergraph>,
    engine: Arc<ActiveHypergraph>,
}

impl ResidentSnapshot {
    /// The epoch this snapshot materializes.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Length of the edit-log prefix (counted from the registry's base
    /// snapshot) that produced this snapshot: replaying `log[..log_len]`
    /// from the base epoch (or `log[a.log_len..b.log_len]` from any earlier
    /// snapshot `a`) reproduces this graph exactly.
    pub fn log_len(&self) -> usize {
        self.log_len
    }

    /// The hypergraph at this epoch.
    pub fn graph(&self) -> &Hypergraph {
        &self.graph
    }

    /// The prebuilt induction engine for this epoch (what induced queries
    /// derive their sub-instances from).
    pub fn engine(&self) -> &ActiveHypergraph {
        &self.engine
    }
}

/// How many historical snapshots a [`ResidentRegistry`] keeps resident per
/// graph. The default keeps everything — any epoch stays addressable
/// forever at memory cost proportional to the version chain. See the
/// [retention docs](self#retention-and-compaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionPolicy {
    /// `Some(k)`: after each mutation, only the base epoch and the latest
    /// `k` epochs keep their snapshots (`k` is clamped to at least 1 — the
    /// latest snapshot is never evictable), so at most `k + 1` snapshots
    /// are resident per graph. The edit log stays complete either way.
    /// `None` (the default): keep every snapshot.
    pub keep_last: Option<u64>,
}

impl RetentionPolicy {
    /// The keep-everything policy (the default; PR-6 behavior).
    pub fn keep_all() -> Self {
        RetentionPolicy::default()
    }

    /// Keep the base epoch plus the latest `k` epochs (clamped to ≥ 1).
    pub fn keep_last(k: u64) -> Self {
        RetentionPolicy {
            keep_last: Some(k.max(1)),
        }
    }
}

/// How many bytes of base CSR arenas a [`ResidentRegistry`] keeps resident
/// across *all* its graphs. The default is unbounded — nothing is ever
/// spilled. See the [storage-tier docs](self#storage-tiers-and-spill).
///
/// Only graphs that can be reconstructed from disk without information loss
/// are spillable: a mapped snapshot opened by
/// [`ResidentRegistry::open_mapped`] that has never been mutated (an edit
/// log pins a graph in memory — its epochs exist nowhere else). Spilling
/// drops the graph's snapshot (arena and prebuilt engine); the next touch
/// transparently re-opens the source file and pages it back in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillPolicy {
    /// `Some(cap)`: whenever the total [`Hypergraph::bytes_resident`] over
    /// every resident snapshot exceeds `cap`, spillable graphs are dropped
    /// in least-recently-touched order until the total fits (or no
    /// spillable graph remains — the cap is best-effort, never an error).
    /// `None` (the default): keep everything resident.
    pub max_resident_bytes: Option<u64>,
}

impl SpillPolicy {
    /// The keep-everything policy (the default).
    pub fn unbounded() -> Self {
        SpillPolicy::default()
    }

    /// Bound total resident base-arena bytes by `cap`.
    pub fn max_bytes(cap: u64) -> Self {
        SpillPolicy {
            max_resident_bytes: Some(cap),
        }
    }
}

/// The resident-graph registry: graphs that stay loaded across a serve
/// session, each **epoch-versioned** — an append-only [`GraphEdit`] log plus
/// one immutable [`ResidentSnapshot`] per epoch (copy-on-write: mutations
/// build the next snapshot; existing snapshots are shared untouched).
///
/// Register every tenant before wrapping the registry in an `Arc` and
/// spawning a [`ShardedRunner`]; after that, *mutate through the `Arc`*:
/// [`apply`](Self::apply) takes `&self` (each graph's version chain sits
/// behind its own lock), appends the edits to the log and publishes the next
/// epoch's snapshot. Workers only ever read snapshots (`&self` induction —
/// see the concurrency section of [`hypergraph::ActiveEngine`]), and every
/// request pins the epoch it was submitted against, so in-flight queries on
/// older epochs keep returning byte-identical outcomes while the log grows.
///
/// Under the default [`RetentionPolicy`] all snapshots are retained: any
/// `(snapshot, log-prefix)` pair remains addressable for replay, which is
/// the determinism contract's time-travel half, at memory cost proportional
/// to the version chain. [`with_retention`](Self::with_retention) bounds
/// that memory; [`persist`](Self::persist)/[`restore`](Self::restore) make
/// the chain durable; [`compact`](Self::compact) truncates it. See the
/// [durability](self#durability-contract) and
/// [retention](self#retention-and-compaction) docs.
#[derive(Debug)]
pub struct ResidentRegistry {
    tag: u64,
    retention: RetentionPolicy,
    spill: SpillPolicy,
    // Logical LRU clock for the spill policy: every snapshot access stamps
    // the touched entry. Relaxed ordering throughout — the clock orders
    // spill victims, never solve outcomes.
    touch_clock: AtomicU64,
    entries: Vec<RwLock<ResidentState>>,
}

impl Default for ResidentRegistry {
    fn default() -> Self {
        // Process-unique registry tag; the counter value never influences
        // solve outcomes, only id↔registry matching.
        static NEXT_REGISTRY_TAG: AtomicU64 = AtomicU64::new(0);
        ResidentRegistry {
            tag: NEXT_REGISTRY_TAG.fetch_add(1, Ordering::Relaxed),
            retention: RetentionPolicy::default(),
            spill: SpillPolicy::default(),
            touch_clock: AtomicU64::new(0),
            entries: Vec::new(),
        }
    }
}

/// One resident graph's version chain.
///
/// `watermarks[i]` is the log prefix length of epoch `base_epoch + i`
/// (`watermarks[0] == 0` always), and `snapshots` is parallel to it — a
/// `None` slot is an epoch whose snapshot the retention policy evicted. Two
/// invariants hold at every unlock: `snapshots[0]` (the base) and the last
/// slot (the latest epoch) are always `Some` **unless `spilled` is set**
/// (then the base slot is the only slot and it is `None` — the spill policy
/// dropped it, and the next touch re-opens `source`), and `log` always
/// covers every watermark, so any retained-or-evicted epoch is replayable
/// from the base.
#[derive(Debug)]
struct ResidentState {
    // Arc'd so `edit_log` is O(1) per call instead of cloning the whole log
    // (appends go through `Arc::make_mut`: in place unless a caller still
    // holds a previously returned handle, which degrades to one
    // copy-on-write — never a per-inspection clone).
    log: Arc<Vec<GraphEdit>>,
    base_epoch: u64,
    watermarks: Vec<usize>,
    snapshots: Vec<Option<Arc<ResidentSnapshot>>>,
    // Snapshots dropped by retention or compaction (observability; mirrored
    // into the pram eviction ledger on the request path).
    evictions: u64,
    // The on-disk HGCSR snapshot this graph was opened from
    // (`open_mapped`), if any — what makes the entry spillable and what a
    // page-in re-opens. `None` for graphs registered from memory.
    source: Option<PathBuf>,
    // `true` while the base snapshot is dropped under the spill policy
    // (only ever set on never-mutated entries with a `source`, so the base
    // slot is the *only* slot and `watermarks.len() == 1`).
    spilled: bool,
    // Spill-policy counters (see `ResidentRegistry::spills` / `page_ins`).
    spills: u64,
    page_ins: u64,
    // Last-touch stamp from the registry's logical clock (atomic so read
    // paths can stamp it under the entry's *read* lock).
    last_touch: AtomicU64,
}

impl ResidentState {
    fn current_epoch(&self) -> Epoch {
        Epoch(self.base_epoch + (self.watermarks.len() - 1) as u64)
    }

    fn latest(&self) -> &Arc<ResidentSnapshot> {
        self.snapshots
            .last()
            .expect("every graph has a base epoch")
            .as_ref()
            .expect("the latest snapshot is never evicted")
    }
}

const LOCK_POISONED: &str = "resident registry lock poisoned (a mutating thread panicked)";
const PAGE_IN_FAILED: &str =
    "spilled resident graph could not be paged back in from its snapshot file";

impl ResidentRegistry {
    /// Creates an empty registry with the default keep-all
    /// [`RetentionPolicy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with an explicit [`RetentionPolicy`].
    pub fn with_retention(retention: RetentionPolicy) -> Self {
        ResidentRegistry {
            retention,
            ..Self::default()
        }
    }

    /// Creates an empty registry with an explicit [`SpillPolicy`] (and the
    /// default keep-all retention).
    pub fn with_spill(spill: SpillPolicy) -> Self {
        ResidentRegistry {
            spill,
            ..Self::default()
        }
    }

    /// Creates an empty registry with explicit retention and spill policies.
    pub fn with_policies(retention: RetentionPolicy, spill: SpillPolicy) -> Self {
        ResidentRegistry {
            retention,
            spill,
            ..Self::default()
        }
    }

    /// The registry's retention policy (fixed at construction).
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// The registry's spill policy (fixed at construction).
    pub fn spill_policy(&self) -> SpillPolicy {
        self.spill
    }

    /// Registers `graph` as a resident tenant at epoch 0 (empty edit log),
    /// building its induction engine eagerly, and returns its handle.
    pub fn register(&mut self, graph: Hypergraph) -> GraphId {
        let id = self.register_with_base(graph, 0);
        self.enforce_spill();
        id
    }

    /// Opens the `HGCSR` snapshot at `path` as a **mapped** resident graph:
    /// the base CSR arena is served zero-copy from a shared read-only file
    /// mapping (see [`hypergraph::io::open_mapped`]) — one mapping for all
    /// shards, with the epoch log layered on top exactly as for an owned
    /// resident. Registers it at epoch 0 with an empty edit log and
    /// remembers `path` as the graph's source, which makes the entry
    /// eligible for the [`SpillPolicy`] for as long as it stays unmutated.
    ///
    /// The file must stay in place and unchanged while the graph is
    /// registered (the atomic writers in [`hypergraph::io`] replace files by
    /// rename, which keeps an existing mapping intact).
    ///
    /// # Errors
    /// [`ReadError::Io`] if the file cannot be opened; [`ReadError::Parse`]
    /// if it fails the snapshot format's structural validation.
    pub fn open_mapped<P: AsRef<Path>>(&mut self, path: P) -> Result<GraphId, ReadError> {
        let graph = hypergraph::io::open_mapped(&path)?;
        let id = self.register_with_base(graph, 0);
        self.entries[id.index]
            .get_mut()
            .expect(LOCK_POISONED)
            .source = Some(path.as_ref().to_path_buf());
        self.enforce_spill();
        Ok(id)
    }

    /// Registers `graph` with its base snapshot numbered `base_epoch` — the
    /// restore path's entry point (a WAL persisted after a compaction has a
    /// non-zero base, and epoch numbers must survive the round trip).
    fn register_with_base(&mut self, graph: Hypergraph, base_epoch: u64) -> GraphId {
        let engine = ActiveHypergraph::from_hypergraph(&graph);
        self.entries.push(RwLock::new(ResidentState {
            log: Arc::new(Vec::new()),
            base_epoch,
            watermarks: vec![0],
            snapshots: vec![Some(Arc::new(ResidentSnapshot {
                epoch: Epoch(base_epoch),
                log_len: 0,
                graph: Arc::new(graph),
                engine: Arc::new(engine),
            }))],
            evictions: 0,
            source: None,
            spilled: false,
            spills: 0,
            page_ins: 0,
            last_touch: AtomicU64::new(self.touch_clock.fetch_add(1, Ordering::Relaxed) + 1),
        }));
        GraphId {
            registry: self.tag,
            index: self.entries.len() - 1,
        }
    }

    /// Applies an edit script to the resident graph behind `id`: validates
    /// and applies the whole batch atomically (on error nothing changes),
    /// appends it to the graph's edit log, builds the next epoch's snapshot,
    /// evicts snapshots below the [`RetentionPolicy`] floor (a no-op under
    /// the default keep-all policy) and returns the new [`Epoch`]. An empty
    /// batch is free: it returns the current epoch without bumping it (the
    /// shared-structure fast path — no rebuild, no new snapshot).
    ///
    /// Works through a shared reference, so a registry already wrapped in an
    /// `Arc` and being served can be mutated mid-stream; requests submitted
    /// before the call keep their pinned epoch — they resolved their
    /// snapshot `Arc` at submission, so even an eviction this apply
    /// triggers cannot retarget or invalidate them.
    ///
    /// # Errors
    /// The first [`EditError`] in script order, leaving log and snapshots
    /// untouched.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn apply(&self, id: GraphId, edits: &[GraphEdit]) -> Result<Epoch, EditError> {
        let entry = self.locate(id);
        let stamp = self.touch_clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut st = entry.write().expect(LOCK_POISONED);
        st.last_touch.store(stamp, Ordering::Relaxed);
        if st.spilled {
            // Page a spilled base back in under the write lock (no
            // enforcement can interleave), then mutate: a graph with a
            // non-empty log is never spillable again.
            self.page_in_locked(&mut st)
                .unwrap_or_else(|detail| panic!("{PAGE_IN_FAILED}: {detail}"));
        }
        let current = st.latest();
        if edits.is_empty() {
            return Ok(current.epoch);
        }
        let graph = apply_edits(current.graph(), edits)?;
        let engine = ActiveHypergraph::from_hypergraph(&graph);
        let epoch = Epoch(st.current_epoch().0 + 1);
        Arc::make_mut(&mut st.log).extend(edits.iter().cloned());
        let log_len = st.log.len();
        st.watermarks.push(log_len);
        st.snapshots.push(Some(Arc::new(ResidentSnapshot {
            epoch,
            log_len,
            graph: Arc::new(graph),
            engine: Arc::new(engine),
        })));
        self.evict_below_floor(&mut st);
        drop(st);
        // The new snapshot may push the pool over the spill cap.
        self.enforce_spill();
        Ok(epoch)
    }

    /// Stamps the entry's LRU clock and, if the spill policy dropped its
    /// base snapshot, pages it back in from the source file. Returns the
    /// reinstalled base snapshot when (and only when) a page-in happened —
    /// a spilled entry was never mutated, so that single snapshot is the
    /// graph's *entire* state and callers can resolve against it directly
    /// instead of re-reading an entry a concurrent enforcement may already
    /// have re-spilled. `Err` carries the I/O/parse detail when the source
    /// file can no longer be opened (the registry is left spilled and
    /// intact — a later touch retries).
    fn page_in_if_spilled(
        &self,
        entry: &RwLock<ResidentState>,
    ) -> Result<Option<Arc<ResidentSnapshot>>, String> {
        let stamp = self.touch_clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let st = entry.read().expect(LOCK_POISONED);
            st.last_touch.store(stamp, Ordering::Relaxed);
            if !st.spilled {
                return Ok(None);
            }
        }
        let mut st = entry.write().expect(LOCK_POISONED);
        if !st.spilled {
            return Ok(None); // another thread paged it in while we upgraded
        }
        let snap = self.page_in_locked(&mut st)?;
        drop(st);
        // Paging in can push the pool back over the cap; rebalance (the
        // just-touched entry carries the freshest stamp, so it is the
        // spiller's last choice). The caller holds `snap` either way.
        self.enforce_spill();
        Ok(Some(snap))
    }

    /// Re-opens a spilled entry's source snapshot and reinstalls its base
    /// (snapshot + engine) under the caller's write lock.
    fn page_in_locked(&self, st: &mut ResidentState) -> Result<Arc<ResidentSnapshot>, String> {
        let source = st
            .source
            .clone()
            .expect("only graphs with a source snapshot file are spillable");
        let graph = hypergraph::io::open_mapped(&source)
            .map_err(|e| format!("cannot re-open {}: {e}", source.display()))?;
        let engine = ActiveHypergraph::from_hypergraph(&graph);
        let snap = Arc::new(ResidentSnapshot {
            epoch: Epoch(st.base_epoch),
            log_len: 0,
            graph: Arc::new(graph),
            engine: Arc::new(engine),
        });
        st.snapshots[0] = Some(Arc::clone(&snap));
        st.spilled = false;
        st.page_ins += 1;
        Ok(snap)
    }

    /// Spills least-recently-touched spillable graphs until the total
    /// resident base-arena bytes fit under the [`SpillPolicy`] cap.
    /// Best-effort: entries touched or mutated since the scan are skipped,
    /// and when no spillable graph remains the pool simply stays over the
    /// cap. Takes entry locks one at a time — callers must hold none.
    fn enforce_spill(&self) {
        let Some(cap) = self.spill.max_resident_bytes else {
            return;
        };
        let mut total: u64 = 0;
        let mut candidates: Vec<(u64, usize, u64)> = Vec::new();
        for (i, entry) in self.entries.iter().enumerate() {
            let st = entry.read().expect(LOCK_POISONED);
            let bytes: u64 = st
                .snapshots
                .iter()
                .flatten()
                .map(|s| s.graph().bytes_resident() as u64)
                .sum();
            total += bytes;
            if !st.spilled && st.source.is_some() && st.watermarks.len() == 1 {
                candidates.push((st.last_touch.load(Ordering::Relaxed), i, bytes));
            }
        }
        if total <= cap {
            return;
        }
        candidates.sort_unstable(); // least-recently-touched first
        for (stamp, i, bytes) in candidates {
            if total <= cap {
                break;
            }
            let mut st = self.entries[i].write().expect(LOCK_POISONED);
            // Re-validate under the write lock: the entry may have been
            // touched, mutated or spilled since the scan.
            if st.spilled
                || st.source.is_none()
                || st.watermarks.len() != 1
                || st.last_touch.load(Ordering::Relaxed) != stamp
            {
                continue;
            }
            st.snapshots[0] = None;
            st.spilled = true;
            st.spills += 1;
            total = total.saturating_sub(bytes);
        }
    }

    /// Drops snapshot `Arc`s below the retention floor (keeping the base and
    /// the latest `k`). The log and watermarks are untouched — evicted
    /// epochs stay replayable, just not resident.
    fn evict_below_floor(&self, st: &mut ResidentState) {
        let Some(k) = self.retention.keep_last else {
            return;
        };
        let cut = st.snapshots.len().saturating_sub(k.max(1) as usize);
        for slot in st.snapshots[..cut].iter_mut().skip(1) {
            if slot.take().is_some() {
                st.evictions += 1;
            }
        }
    }

    /// The lowest epoch ≥ the base that is guaranteed resident under the
    /// retention policy — what [`SolveError::EpochEvicted`] reports. Pins in
    /// `floor..=current` always resolve; the base epoch additionally stays
    /// resident however far the floor moves.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn retention_floor(&self, id: GraphId) -> Epoch {
        let st = self.locate(id).read().expect(LOCK_POISONED);
        self.floor_of(&st)
    }

    fn floor_of(&self, st: &ResidentState) -> Epoch {
        let cut = match self.retention.keep_last {
            Some(k) => st.snapshots.len().saturating_sub(k.max(1) as usize),
            None => 0,
        };
        Epoch(st.base_epoch + cut as u64)
    }

    /// The current (most recent) snapshot of the graph behind `id`,
    /// transparently paging a spilled base snapshot back in.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range, or if the graph was spilled and its source snapshot file can
    /// no longer be re-opened (the request path reports that as
    /// [`SolveError::SnapshotUnavailable`] instead).
    pub fn latest(&self, id: GraphId) -> Arc<ResidentSnapshot> {
        let entry = self.locate(id);
        loop {
            if let Some(snap) = self
                .page_in_if_spilled(entry)
                .unwrap_or_else(|detail| panic!("{PAGE_IN_FAILED}: {detail}"))
            {
                return snap;
            }
            let st = entry.read().expect(LOCK_POISONED);
            if !st.spilled {
                return Arc::clone(st.latest());
            }
            // Re-spilled between the page-in check and this read (a
            // concurrent enforcement); retry.
        }
    }

    /// The snapshot of the graph behind `id` at a specific epoch, or `None`
    /// if the graph has never reached that epoch **or** the epoch's
    /// snapshot was evicted by the retention policy / a
    /// [`compact`](Self::compact) (the request path distinguishes the two —
    /// see [`SolveError::EpochEvicted`]).
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn snapshot_at(&self, id: GraphId, epoch: Epoch) -> Option<Arc<ResidentSnapshot>> {
        let entry = self.locate(id);
        loop {
            if let Some(snap) = self
                .page_in_if_spilled(entry)
                .unwrap_or_else(|detail| panic!("{PAGE_IN_FAILED}: {detail}"))
            {
                // A spilled entry was never mutated: the paged-in base is
                // its only epoch.
                return (snap.epoch() == epoch).then_some(snap);
            }
            let st = entry.read().expect(LOCK_POISONED);
            if st.spilled {
                continue; // re-spilled by a concurrent enforcement; retry
            }
            let idx = epoch.0.checked_sub(st.base_epoch)? as usize;
            return st.snapshots.get(idx)?.as_ref().map(Arc::clone);
        }
    }

    /// The current epoch of the graph behind `id`. Metadata only — never
    /// pages a spilled graph back in.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn current_epoch(&self, id: GraphId) -> Epoch {
        self.locate(id).read().expect(LOCK_POISONED).current_epoch()
    }

    /// The epoch of the graph's base snapshot: 0 until a
    /// [`compact`](Self::compact) (or a restore of a compacted WAL)
    /// re-bases the chain on a later epoch.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn base_epoch(&self, id: GraphId) -> Epoch {
        Epoch(self.locate(id).read().expect(LOCK_POISONED).base_epoch)
    }

    /// A shared handle to the full edit log of the graph behind `id` (epoch
    /// `k`'s snapshot was produced by the prefix
    /// `log[..snapshot.log_len()]`, counted from the base snapshot).
    ///
    /// O(1): the handle shares the registry's own storage instead of
    /// cloning the log. Holding it across a concurrent
    /// [`apply`](Self::apply) is safe — the apply then copy-on-writes the
    /// log once and the handle keeps observing the pre-apply state.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn edit_log(&self, id: GraphId) -> Arc<Vec<GraphEdit>> {
        Arc::clone(&self.locate(id).read().expect(LOCK_POISONED).log)
    }

    /// Number of snapshots currently resident for the graph behind `id` —
    /// at most `keep_last + 1` under a bounded [`RetentionPolicy`] (the
    /// base plus the latest `k`), one more epoch than that never
    /// accumulates. A graph spilled under the [`SpillPolicy`] reports 0.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn retained_snapshots(&self, id: GraphId) -> usize {
        let st = self.locate(id).read().expect(LOCK_POISONED);
        st.snapshots.iter().filter(|s| s.is_some()).count()
    }

    /// Snapshots dropped for the graph behind `id` by retention evictions
    /// and [`compact`](Self::compact)s so far.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn evictions(&self, id: GraphId) -> u64 {
        self.locate(id).read().expect(LOCK_POISONED).evictions
    }

    /// Re-bases the graph's history onto its current snapshot: the edit log
    /// empties, the current epoch becomes the base epoch, and every earlier
    /// snapshot is dropped (counted in [`evictions`](Self::evictions)).
    /// Epoch *numbers* are preserved — the current epoch keeps its value,
    /// so existing [`EpochPin::At`] pins of it stay valid, while pins of
    /// earlier epochs now answer [`SolveError::EpochEvicted`]. Returns the
    /// (unchanged) current epoch.
    ///
    /// The graph and engine are shared into the re-based snapshot, not
    /// rebuilt; in-flight requests holding pre-compact snapshot `Arc`s are
    /// unaffected. Persist first if the history should survive — a WAL
    /// written *after* a compact starts at the compacted base.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn compact(&self, id: GraphId) -> Epoch {
        let mut st = self.locate(id).write().expect(LOCK_POISONED);
        if st.watermarks.len() == 1 {
            // Already based on the current epoch (always the case for
            // spilled entries, whose base must stay un-materialized here).
            return st.current_epoch();
        }
        let latest = Arc::clone(st.latest());
        let epoch = latest.epoch;
        let dropped = st.snapshots.iter().filter(|s| s.is_some()).count() - 1;
        st.evictions += dropped as u64;
        st.base_epoch = epoch.0;
        st.log = Arc::new(Vec::new());
        st.watermarks = vec![0];
        st.snapshots = vec![Some(Arc::new(ResidentSnapshot {
            epoch,
            log_len: 0,
            graph: Arc::clone(&latest.graph),
            engine: Arc::clone(&latest.engine),
        }))];
        epoch
    }

    /// Persists the graph behind `id` — its base snapshot and complete edit
    /// log, batch boundaries (= epoch boundaries) included — to the
    /// checksummed WAL format of [`hypergraph::io::write_wal`], atomically.
    /// [`restore`](Self::restore) (in this or any other process) reproduces
    /// the entry byte-identically: same epochs, same
    /// [`log_len`](ResidentSnapshot::log_len) watermarks, same solve
    /// fingerprints. Retention does not limit what is persisted: the log is
    /// always complete, so evicted epochs round-trip too.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn persist<P: AsRef<Path>>(&self, id: GraphId, path: P) -> std::io::Result<()> {
        let entry = self.locate(id);
        loop {
            if let Some(snap) = self
                .page_in_if_spilled(entry)
                .unwrap_or_else(|detail| panic!("{PAGE_IN_FAILED}: {detail}"))
            {
                // A spilled entry was never mutated: base snapshot + empty
                // log is its complete history.
                return hypergraph::io::write_wal(path, snap.epoch().0, snap.graph(), &[]);
            }
            let st = entry.read().expect(LOCK_POISONED);
            if st.spilled {
                continue; // re-spilled by a concurrent enforcement; retry
            }
            let base = st.snapshots[0]
                .as_ref()
                .expect("the base snapshot of a resident graph is never evicted");
            let batches: Vec<&[GraphEdit]> = st
                .watermarks
                .windows(2)
                .map(|w| &st.log[w[0]..w[1]])
                .collect();
            return hypergraph::io::write_wal(path, st.base_epoch, base.graph(), &batches);
        }
    }

    /// Persists the **latest** snapshot of the graph behind `id` to the
    /// binary `HGCSR` format of [`hypergraph::io::write_csr`], atomically
    /// and fsynced. Unlike [`persist`](Self::persist) this is a *checkpoint*
    /// — graph only, no edit log, no epoch numbering — whose point is the
    /// reopen path: [`open_mapped`](Self::open_mapped) serves it zero-copy
    /// from a read-only mapping, with byte-identical solve outcomes (the
    /// mapped-vs-owned fingerprint suites pin this).
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range, or if the graph was spilled and its source snapshot file can
    /// no longer be re-opened.
    pub fn persist_snapshot<P: AsRef<Path>>(&self, id: GraphId, path: P) -> std::io::Result<()> {
        let snap = self.latest(id);
        hypergraph::io::write_csr(snap.graph(), path)
    }

    /// Restores a graph persisted by [`persist`](Self::persist) into this
    /// registry, replaying each WAL batch through the ordinary
    /// [`apply`](Self::apply) path (so this registry's retention policy
    /// applies during the replay exactly as it would have live), and
    /// returns the new graph's handle. A WAL with a torn tail restores the
    /// longest whole-batch prefix — i.e. the registry as of the last fully
    /// persisted epoch.
    ///
    /// # Errors
    /// [`ReadError::Io`] if the file cannot be read; [`ReadError::Parse`]
    /// if it is corrupt (bad header/base record, a checksummed record that
    /// fails validation) **or** if a recovered batch does not apply cleanly
    /// — a WAL whose edits violate their own log is corrupt even when every
    /// checksum passes. On error the registry is left unchanged.
    pub fn restore<P: AsRef<Path>>(&mut self, path: P) -> Result<GraphId, ReadError> {
        let wal = hypergraph::io::read_wal(path)?;
        let id = self.register_with_base(wal.base, wal.base_epoch);
        for (k, batch) in wal.batches.iter().enumerate() {
            if let Err(e) = self.apply(id, batch) {
                // The id was never handed out and `&mut self` precludes a
                // concurrent register, so the half-replayed entry is the
                // last one — un-register it to leave the registry unchanged.
                self.entries.pop();
                return Err(ReadError::Parse(ParseError::CorruptWalRecord {
                    record: k + 1,
                    detail: format!("batch does not apply: {e}"),
                }));
            }
        }
        self.enforce_spill();
        Ok(id)
    }

    /// Direct-accessor lookup with distinguished diagnostics: a foreign id
    /// and a same-registry id with an out-of-range index are different
    /// caller bugs and get different panic messages.
    fn locate(&self, id: GraphId) -> &RwLock<ResidentState> {
        assert!(
            id.registry == self.tag,
            "GraphId was minted by a different ResidentRegistry (id tag {}, this registry's tag {})",
            id.registry,
            self.tag
        );
        self.entries.get(id.index).unwrap_or_else(|| {
            panic!(
                "GraphId index {} out of range: this registry holds {} graph(s)",
                id.index,
                self.entries.len()
            )
        })
    }

    /// Request-path lookup (errors as data, never panics): resolves `id` at
    /// `pin` to a snapshot. This is the submission-time resolution point —
    /// the returned `Arc` keeps the snapshot alive for the request however
    /// the retention floor moves afterwards, which is what makes outcomes
    /// independent of the race between queue scheduling and eviction.
    // The request paths go through `lookup_counted` to mirror page-ins into
    // the spill ledgers; this thin wrapper serves the resolution suites.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn lookup(
        &self,
        id: GraphId,
        pin: EpochPin,
    ) -> Result<Arc<ResidentSnapshot>, SolveError> {
        self.lookup_counted(id, pin).0
    }

    /// [`lookup`](Self::lookup) plus the spill-policy observation: the
    /// returned flag is `true` when this resolution had to page the graph's
    /// spilled base snapshot back in — what the serving layer mirrors into
    /// the pram spill ledgers ([`Workspace::note_graph_paged_in`]).
    pub(crate) fn lookup_counted(
        &self,
        id: GraphId,
        pin: EpochPin,
    ) -> (Result<Arc<ResidentSnapshot>, SolveError>, bool) {
        if id.registry != self.tag {
            return (Err(SolveError::UnknownGraph(id)), false);
        }
        let Some(entry) = self.entries.get(id.index) else {
            return (Err(SolveError::UnknownGraph(id)), false);
        };
        loop {
            match self.page_in_if_spilled(entry) {
                Ok(Some(snap)) => {
                    // A spilled entry was never mutated: the paged-in base
                    // is its only epoch.
                    let resolved = match pin {
                        EpochPin::Latest => Ok(snap),
                        EpochPin::At(epoch) if epoch == snap.epoch() => Ok(snap),
                        EpochPin::At(epoch) => Err(SolveError::UnknownEpoch { graph: id, epoch }),
                    };
                    return (resolved, true);
                }
                Ok(None) => {}
                Err(detail) => {
                    return (
                        Err(SolveError::SnapshotUnavailable { graph: id, detail }),
                        false,
                    );
                }
            }
            let st = entry.read().expect(LOCK_POISONED);
            if st.spilled {
                continue; // re-spilled by a concurrent enforcement; retry
            }
            let resolved = match pin {
                EpochPin::Latest => Ok(Arc::clone(st.latest())),
                EpochPin::At(epoch) => {
                    // Three distinct answers: beyond the current epoch the
                    // pin addresses the future (UnknownEpoch — "never
                    // reached"); at-or-before it but below the base or in an
                    // evicted slot, the epoch existed and retention dropped
                    // it (EpochEvicted); otherwise the snapshot is resident.
                    if epoch > st.current_epoch() {
                        return (Err(SolveError::UnknownEpoch { graph: id, epoch }), false);
                    }
                    let resident = epoch
                        .0
                        .checked_sub(st.base_epoch)
                        .and_then(|idx| st.snapshots.get(idx as usize)?.as_ref());
                    match resident {
                        Some(snap) => Ok(Arc::clone(snap)),
                        None => Err(SolveError::EpochEvicted {
                            graph: id,
                            epoch,
                            floor: self.floor_of(&st),
                        }),
                    }
                }
            };
            return (resolved, false);
        }
    }

    /// `true` while the graph behind `id` is spilled: its base snapshot
    /// (arena and engine) has been dropped under the [`SpillPolicy`] and the
    /// next touch will page it back in from its source file.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn is_spilled(&self, id: GraphId) -> bool {
        self.locate(id).read().expect(LOCK_POISONED).spilled
    }

    /// How many times the graph behind `id` has been spilled so far.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn spills(&self, id: GraphId) -> u64 {
        self.locate(id).read().expect(LOCK_POISONED).spills
    }

    /// How many times the graph behind `id` has been paged back in so far.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry or its index is out of
    /// range.
    pub fn page_ins(&self, id: GraphId) -> u64 {
        self.locate(id).read().expect(LOCK_POISONED).page_ins
    }

    /// Total [`Hypergraph::bytes_resident`] over every resident snapshot of
    /// every graph — the quantity the [`SpillPolicy`] caps. Spilled graphs
    /// contribute nothing.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|entry| {
                let st = entry.read().expect(LOCK_POISONED);
                st.snapshots
                    .iter()
                    .flatten()
                    .map(|s| s.graph().bytes_resident() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no graph has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Which algorithm a [`SolveRequest`] runs (all six are servable, both as
/// full solves and as induced queries).
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// SBL (Algorithm 1, the paper's contribution).
    Sbl(SblConfig),
    /// Beame–Luby (Algorithm 2) — the induced-query headliner.
    Bl(BlConfig),
    /// Karp–Upfal–Wigderson style parallel search.
    Kuw,
    /// Sequential greedy (deterministic; the request seed is unused).
    Greedy,
    /// Random-permutation greedy.
    Permutation,
    /// Łuczak–Szymańska-style linear-hypergraph MIS (errors on non-linear
    /// instances instead of panicking — see [`SolveError::NotLinear`]).
    Linear,
}

impl Algorithm {
    /// Short stable name (used in traces, logs and bench tables).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Sbl(_) => "sbl",
            Algorithm::Bl(_) => "bl",
            Algorithm::Kuw => "kuw",
            Algorithm::Greedy => "greedy",
            Algorithm::Permutation => "permutation",
            Algorithm::Linear => "linear",
        }
    }
}

/// What a [`SolveRequest`] solves.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A one-off instance shipped with the request (shared, not copied, per
    /// shard).
    Adhoc(Arc<Hypergraph>),
    /// A full solve of a resident graph.
    Resident(GraphId),
    /// The sub-hypergraph of a resident graph induced by `vertices` (keeping
    /// edges fully inside the set — SBL's `H'` semantics). Vertex ids must be
    /// valid for the graph and duplicate-free; violations come back as
    /// [`SolveError::InvalidQuery`], not panics.
    Induced {
        /// The resident graph queried.
        graph: GraphId,
        /// The inducing vertex set (any order, duplicate-free).
        vertices: Arc<Vec<VertexId>>,
    },
}

impl Target {
    /// The resident graph this target addresses, if any.
    fn graph_id(&self) -> Option<GraphId> {
        match self {
            Target::Adhoc(_) => None,
            Target::Resident(id) => Some(*id),
            Target::Induced { graph, .. } => Some(*graph),
        }
    }
}

/// One unit of work for the serving layer. Outcomes are a pure function of
/// `(snapshot, algorithm, seed)` — see the [module docs](self); the tenant
/// only drives routing, admission and accounting.
///
/// Requests are built, never assembled field-by-field: the three target
/// constructors — [`for_graph`](Self::for_graph), [`adhoc`](Self::adhoc),
/// [`induced`](Self::induced) — each return a [`SolveRequestBuilder`], the
/// *single* construction path shared by library callers, the examples, the
/// bench harness and the [`net`](crate::net) wire decoder. A request is
/// therefore always well-formed: the target is fixed at construction, every
/// other knob has the documented default, and the read-only accessors below
/// mirror the former public fields.
///
/// ```
/// use hypergraph_mis::prelude::*;
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// # let mut registry = ResidentRegistry::new();
/// # let id = registry.register(generate::paper_regime(&mut rng, 64, 8, 4));
/// let request = SolveRequest::for_graph(id)
///     .algorithm(Algorithm::Sbl(SblConfig::default()))
///     .seed(7)
///     .pin(EpochPin::Latest)
///     .tenant(TenantId(3))
///     .build();
/// assert_eq!(request.seed(), 7);
/// assert_eq!(request.tenant(), TenantId(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    pub(crate) tenant: TenantId,
    pub(crate) target: Target,
    pub(crate) algorithm: Algorithm,
    pub(crate) seed: u64,
    pub(crate) pin: EpochPin,
}

impl SolveRequest {
    /// Starts a request for a full solve of a resident graph.
    pub fn for_graph(graph: GraphId) -> SolveRequestBuilder {
        SolveRequestBuilder::new(Target::Resident(graph))
    }

    /// Starts a request shipping a one-off instance (shared, not copied,
    /// per shard).
    pub fn adhoc(graph: Arc<Hypergraph>) -> SolveRequestBuilder {
        SolveRequestBuilder::new(Target::Adhoc(graph))
    }

    /// Starts an induced query against a resident graph (see
    /// [`Target::Induced`] for the vertex-set requirements — violations come
    /// back as [`SolveError::InvalidQuery`] outcomes, not panics).
    pub fn induced(graph: GraphId, vertices: impl Into<Arc<Vec<VertexId>>>) -> SolveRequestBuilder {
        SolveRequestBuilder::new(Target::Induced {
            graph,
            vertices: vertices.into(),
        })
    }

    /// Starts a request from an already-assembled [`Target`] — the general
    /// form behind [`for_graph`](Self::for_graph), [`adhoc`](Self::adhoc)
    /// and [`induced`](Self::induced), for callers that compute the target
    /// dynamically.
    pub fn for_target(target: Target) -> SolveRequestBuilder {
        SolveRequestBuilder::new(target)
    }

    /// The tenant this request belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// What the request solves.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Which algorithm the request runs.
    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }

    /// The per-request RNG seed (`ChaCha8Rng::seed_from_u64`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Which epoch of a resident target the request solves (outcomes echo
    /// the submission-time resolution — see [`EpochPin`]).
    pub fn pin(&self) -> EpochPin {
        self.pin
    }
}

/// Builder returned by the [`SolveRequest`] constructors. Every setter is
/// chainable and optional; [`build`](Self::build) yields the finished
/// request. Defaults: [`TenantId::default`], SBL with
/// [`SblConfig::default`], seed `0`, [`EpochPin::Latest`].
#[derive(Debug, Clone)]
pub struct SolveRequestBuilder {
    request: SolveRequest,
}

impl SolveRequestBuilder {
    fn new(target: Target) -> Self {
        SolveRequestBuilder {
            request: SolveRequest {
                tenant: TenantId::default(),
                target,
                algorithm: Algorithm::Sbl(SblConfig::default()),
                seed: 0,
                pin: EpochPin::default(),
            },
        }
    }

    /// Which algorithm to run (default: SBL with [`SblConfig::default`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.request.algorithm = algorithm;
        self
    }

    /// The per-request RNG seed (default `0`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.request.seed = seed;
        self
    }

    /// Which epoch of a resident target to solve (default
    /// [`EpochPin::Latest`]; ignored for ad-hoc targets).
    pub fn pin(mut self, pin: EpochPin) -> Self {
        self.request.pin = pin;
        self
    }

    /// The tenant the request belongs to (default [`TenantId::default`]).
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.request.tenant = tenant;
        self
    }

    /// Finishes the request.
    pub fn build(self) -> SolveRequest {
        self.request
    }
}

/// Per-algorithm instrumentation carried by a [`SolveOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveTrace {
    /// SBL per-round trace.
    Sbl(SblTrace),
    /// Beame–Luby per-stage trace.
    Bl(BlTrace),
    /// KUW per-round trace.
    Kuw(KuwTrace),
    /// Greedy has no trace beyond its cost totals.
    Greedy,
    /// The sampled permutation (processing order, original vertex ids).
    Permutation(Vec<VertexId>),
    /// Linear-hypergraph per-stage trace (BL-shaped).
    Linear(BlTrace),
    /// The request failed before producing a trace (see
    /// [`SolveOutcome::error`]).
    Failed,
}

/// A request-level failure, reported as data instead of panicking a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// [`Algorithm::Linear`] on a non-linear instance.
    NotLinear(LinearError),
    /// The request referenced a [`GraphId`] not present in the registry.
    UnknownGraph(GraphId),
    /// The request pinned an [`Epoch`] the resident graph has never reached
    /// (pins address existing history, not the future).
    UnknownEpoch {
        /// The resident graph queried.
        graph: GraphId,
        /// The epoch the request pinned.
        epoch: Epoch,
    },
    /// The request pinned an [`Epoch`] the graph *did* reach, but whose
    /// snapshot the registry's [`RetentionPolicy`] (or a
    /// [`ResidentRegistry::compact`]) has dropped. Distinct from
    /// [`UnknownEpoch`](Self::UnknownEpoch): the epoch is history, not
    /// future — its log prefix still exists, so it remains replayable from
    /// a persisted WAL even though it is no longer resident.
    EpochEvicted {
        /// The resident graph queried.
        graph: GraphId,
        /// The evicted epoch the request pinned.
        epoch: Epoch,
        /// The lowest epoch guaranteed resident at the time of the lookup
        /// (the base epoch additionally stays resident below it).
        floor: Epoch,
    },
    /// A resident graph had been spilled under the registry's
    /// [`SpillPolicy`] and its source snapshot file could no longer be
    /// re-opened (deleted, truncated or corrupted since registration).
    /// Reported as outcome data on the request path; the registry's direct
    /// accessors panic on the same condition instead.
    SnapshotUnavailable {
        /// The resident graph queried.
        graph: GraphId,
        /// Human-readable I/O or parse detail from the failed re-open.
        detail: String,
    },
    /// An induced query listed an out-of-range or duplicate vertex id.
    InvalidQuery {
        /// The offending vertex id.
        vertex: VertexId,
        /// `true` if the id was listed twice, `false` if out of range.
        duplicate: bool,
    },
    /// Admission control rejected the request before it reached a shard —
    /// rejection as data: the ticket is consumed and the outcome flows
    /// through [`collect_ordered`](ShardedRunner::collect_ordered) /
    /// [`collect_streaming`](ShardedRunner::collect_streaming) like any
    /// other. Deterministic for a fixed submit/collect sequence under
    /// `RoundRobin`/`TenantAffinity` routing.
    AdmissionDenied {
        /// The tenant whose quota rejected the request.
        tenant: TenantId,
        /// Which limit was hit.
        reason: DenyReason,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotLinear(e) => write!(f, "linear-hypergraph algorithm refused: {e}"),
            SolveError::UnknownGraph(id) => {
                let (registry, index) = id.wire_parts();
                write!(f, "unknown graph (registry {registry}, index {index})")
            }
            SolveError::UnknownEpoch { graph, epoch } => {
                let (registry, index) = graph.wire_parts();
                write!(
                    f,
                    "graph (registry {registry}, index {index}) has never reached epoch {}",
                    epoch.0
                )
            }
            SolveError::EpochEvicted {
                graph,
                epoch,
                floor,
            } => {
                let (registry, index) = graph.wire_parts();
                write!(
                    f,
                    "epoch {} of graph (registry {registry}, index {index}) was evicted by \
                     retention (resident floor: epoch {})",
                    epoch.0, floor.0
                )
            }
            SolveError::SnapshotUnavailable { graph, detail } => {
                let (registry, index) = graph.wire_parts();
                write!(
                    f,
                    "spilled snapshot of graph (registry {registry}, index {index}) could not \
                     be re-opened: {detail}"
                )
            }
            SolveError::InvalidQuery { vertex, duplicate } => {
                if *duplicate {
                    write!(f, "induced query listed vertex {vertex} twice")
                } else {
                    write!(f, "induced query listed out-of-range vertex {vertex}")
                }
            }
            SolveError::AdmissionDenied { tenant, reason } => {
                let reason = match reason {
                    DenyReason::QuotaExhausted => "token bucket exhausted",
                    DenyReason::InFlightCap => "in-flight cap reached",
                };
                write!(f, "admission denied for tenant {}: {reason}", tenant.0)
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::NotLinear(e) => Some(e),
            _ => None,
        }
    }
}

/// The response to one [`SolveRequest`].
///
/// `ticket` and `shard` describe *scheduling* (which submission this answers
/// and who computed it); everything else is the deterministic payload. Use
/// [`fingerprint`](Self::fingerprint) to compare outcomes across shard
/// counts or against the sequential path — it excludes the shard.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Submission ticket this outcome answers (assigned by
    /// [`ShardedRunner::submit`]; 0 for direct
    /// [`BatchRunner::solve`](crate::batch::BatchRunner::solve) calls).
    pub ticket: u64,
    /// Shard that computed it (0 for the sequential path, and meaningless
    /// for admission-denied outcomes, which never reach a shard). Diagnostic
    /// only — deliberately excluded from [`fingerprint`](Self::fingerprint).
    pub shard: usize,
    /// The request's tenant, echoed back (scheduling metadata like `ticket`
    /// and `shard`; excluded from [`fingerprint`](Self::fingerprint)).
    pub tenant: TenantId,
    /// The request's RNG seed, echoed back.
    pub seed: u64,
    /// The resident-graph epoch this outcome was computed against (the
    /// submission-time resolution of [`SolveRequest::pin`]); `None` for
    /// ad-hoc targets and for requests that failed before reaching a
    /// snapshot (admission denials, unknown graphs/epochs). Part of the
    /// deterministic payload: it is a pure function of the submit/mutate
    /// call sequence, so it participates in
    /// [`fingerprint`](Self::fingerprint).
    pub epoch: Option<Epoch>,
    /// The maximal independent set (sorted, original vertex ids; empty on
    /// error).
    pub independent_set: Vec<VertexId>,
    /// Total work charged by the cost model.
    pub work: u64,
    /// Total depth charged by the cost model.
    pub depth: u64,
    /// Rounds (global synchronisation barriers) charged by the cost model.
    pub rounds: u64,
    /// Per-algorithm instrumentation.
    pub trace: SolveTrace,
    /// `Some` if the request failed (the deterministic payload fields are
    /// then empty/zero).
    pub error: Option<SolveError>,
}

/// The deterministic part of a [`SolveOutcome`] (everything but the shard
/// and ticket): equal across shard counts, scheduling and pool generations.
pub type SolveFingerprint = (
    u64,
    Option<Epoch>,
    Vec<VertexId>,
    u64,
    u64,
    u64,
    SolveTrace,
    Option<SolveError>,
);

impl SolveOutcome {
    /// Extracts the scheduling-independent payload: `(seed, epoch,
    /// independent set, work, depth, rounds, trace, error)`.
    pub fn fingerprint(&self) -> SolveFingerprint {
        (
            self.seed,
            self.epoch,
            self.independent_set.clone(),
            self.work,
            self.depth,
            self.rounds,
            self.trace.clone(),
            self.error.clone(),
        )
    }
}

/// Executes one request against a workspace — the single-shard solve core
/// shared by [`BatchRunner::solve`](crate::batch::BatchRunner::solve) and
/// every [`ShardedRunner`] worker, which is what makes the sequential path
/// and all shard counts agree structurally, not just by test. Resolution
/// happens here (execution time *is* submission time on this path), then
/// delegates to [`execute_resolved`] — the same core the sharded workers
/// run with their submission-time resolution.
pub(crate) fn execute(
    registry: &ResidentRegistry,
    req: &SolveRequest,
    ws: &mut Workspace,
) -> SolveOutcome {
    let resolved = req.target.graph_id().map(|id| {
        let (resolved, paged_in) = registry.lookup_counted(id, req.pin);
        if paged_in {
            // Observability only, like the eviction noting below: one spill
            // observed, one page-in (the page-in undid exactly one spill).
            ws.note_graph_spilled(id.index as u64);
            ws.note_graph_paged_in(id.index as u64);
        }
        resolved
    });
    execute_resolved(req, resolved, ws)
}

/// The solve core proper, taking the request's already-resolved snapshot
/// (`None` only for ad-hoc targets). Workers receive the resolution made by
/// [`ShardedRunner::submit`] on the caller thread — holding the snapshot
/// `Arc` from submission to execution is what pins the request against
/// concurrent retention evictions and compactions.
pub(crate) fn execute_resolved(
    req: &SolveRequest,
    resolved: Option<Result<Arc<ResidentSnapshot>, SolveError>>,
    ws: &mut Workspace,
) -> SolveOutcome {
    // Observability only: record the tenant→workspace touch so affinity wins
    // show up in the pool's rewarm report. Never influences the solve.
    ws.note_tenant(req.tenant.0);
    let mut rng = ChaCha8Rng::seed_from_u64(req.seed);
    let mut out = match (&req.target, resolved) {
        (Target::Adhoc(h), _) => solve_full(h, &req.algorithm, req.seed, &mut rng, ws),
        (Target::Resident(id), Some(Ok(snap))) => {
            // Observability only: per-graph epoch touches show the
            // copy-on-write win over re-registering in the pool report.
            ws.note_graph_epoch(id.index as u64, snap.epoch().0);
            let mut out = solve_full(snap.graph(), &req.algorithm, req.seed, &mut rng, ws);
            out.epoch = Some(snap.epoch());
            out
        }
        (Target::Induced { graph, vertices }, Some(Ok(snap))) => {
            ws.note_graph_epoch(graph.index as u64, snap.epoch().0);
            let mut out = solve_induced(
                snap.engine(),
                vertices,
                &req.algorithm,
                req.seed,
                &mut rng,
                ws,
            );
            if out.error.is_none() {
                out.epoch = Some(snap.epoch());
            }
            out
        }
        (_, Some(Err(e))) => {
            // Observability only: evicted-pin touches feed the pool's
            // eviction report, so retention pressure is visible per graph.
            if let SolveError::EpochEvicted { graph, .. } = &e {
                ws.note_graph_evicted(graph.index as u64);
            }
            failed(req.seed, e)
        }
        (Target::Resident(_) | Target::Induced { .. }, None) => {
            unreachable!("resident targets are resolved before execution")
        }
    };
    out.tenant = req.tenant;
    out
}

fn failed(seed: u64, error: SolveError) -> SolveOutcome {
    SolveOutcome {
        ticket: 0,
        shard: 0,
        tenant: TenantId::default(),
        seed,
        epoch: None,
        independent_set: Vec::new(),
        work: 0,
        depth: 0,
        rounds: 0,
        trace: SolveTrace::Failed,
        error: Some(error),
    }
}

fn outcome(
    seed: u64,
    independent_set: Vec<VertexId>,
    trace: SolveTrace,
    cost: &CostTracker,
) -> SolveOutcome {
    let c = cost.cost();
    SolveOutcome {
        ticket: 0,
        shard: 0,
        tenant: TenantId::default(),
        seed,
        epoch: None,
        independent_set,
        work: c.work,
        depth: c.depth,
        rounds: cost.rounds(),
        trace,
        error: None,
    }
}

/// A full solve: the plain `*_in` entry points over the request's hypergraph.
fn solve_full(
    h: &Hypergraph,
    algorithm: &Algorithm,
    seed: u64,
    rng: &mut ChaCha8Rng,
    ws: &mut Workspace,
) -> SolveOutcome {
    match algorithm {
        Algorithm::Sbl(cfg) => {
            let o = sbl_mis_in(h, rng, cfg, ws);
            outcome(seed, o.independent_set, SolveTrace::Sbl(o.trace), &o.cost)
        }
        Algorithm::Bl(cfg) => {
            let o = bl_mis_in(h, rng, cfg, ws);
            outcome(seed, o.independent_set, SolveTrace::Bl(o.trace), &o.cost)
        }
        Algorithm::Kuw => {
            let o = kuw_mis_in(h, rng, ws);
            outcome(seed, o.independent_set, SolveTrace::Kuw(o.trace), &o.cost)
        }
        Algorithm::Greedy => {
            let o = greedy_mis_in(h, None, ws);
            outcome(seed, o.independent_set, SolveTrace::Greedy, &o.cost)
        }
        Algorithm::Permutation => {
            let o = permutation_mis_in(h, rng, ws);
            outcome(
                seed,
                o.independent_set,
                SolveTrace::Permutation(o.permutation),
                &o.cost,
            )
        }
        Algorithm::Linear => match linear_mis_in(h, rng, ws) {
            Ok(o) => outcome(
                seed,
                o.independent_set,
                SolveTrace::Linear(o.trace),
                &o.cost,
            ),
            Err(e) => failed(seed, SolveError::NotLinear(e)),
        },
    }
}

/// An induced query: derive the sub-instance through the resident engine's
/// incidence into a shard-local engine slot, then solve it.
///
/// BL/KUW/greedy run directly on the sub-engine (their `*_on_active_in`
/// paths). SBL/permutation/linear have no on-engine entry point, so the
/// sub-instance is compacted to a standalone hypergraph and the answer is
/// mapped back to original ids — deterministic either way.
fn solve_induced(
    parent: &ActiveHypergraph,
    vertices: &[VertexId],
    algorithm: &Algorithm,
    seed: u64,
    rng: &mut ChaCha8Rng,
    ws: &mut Workspace,
) -> SolveOutcome {
    let id_space = parent.id_space();
    // Mark the query set, validating as we go; the buffer is pooled under a
    // trusted-clean key, so the unwind below must cover every bit we set.
    let mut marked = ws.take_flags_clean("serve.marked", id_space);
    let mut invalid: Option<SolveError> = None;
    let mut set_upto = 0usize;
    for (i, &v) in vertices.iter().enumerate() {
        if (v as usize) >= id_space {
            invalid = Some(SolveError::InvalidQuery {
                vertex: v,
                duplicate: false,
            });
            set_upto = i;
            break;
        }
        if marked[v as usize] {
            invalid = Some(SolveError::InvalidQuery {
                vertex: v,
                duplicate: true,
            });
            set_upto = i;
            break;
        }
        marked[v as usize] = true;
    }
    if let Some(error) = invalid {
        for &v in &vertices[..set_upto] {
            marked[v as usize] = false;
        }
        ws.put_flags("serve.marked", marked);
        return failed(seed, error);
    }

    let mut sub: ActiveHypergraph = ws
        .take_any::<ActiveHypergraph>("serve.sub")
        .unwrap_or_else(|| ActiveHypergraph::from_parts(Vec::new(), Vec::new()));
    parent.induced_by_into(&marked, vertices, &mut sub);
    for &v in vertices {
        marked[v as usize] = false;
    }
    ws.put_flags("serve.marked", marked);

    let mut cost = CostTracker::new();
    let out = match algorithm {
        Algorithm::Bl(cfg) => {
            let (set, trace) = mis_core::bl::bl_on_active_in(&mut sub, rng, cfg, &mut cost, ws);
            outcome(seed, set, SolveTrace::Bl(trace), &cost)
        }
        Algorithm::Kuw => {
            let (set, trace) = mis_core::kuw::kuw_on_active_in(&mut sub, rng, &mut cost, ws);
            outcome(seed, set, SolveTrace::Kuw(trace), &cost)
        }
        Algorithm::Greedy => {
            let set = greedy_on_active_in(&sub, &mut cost, ws);
            outcome(seed, set, SolveTrace::Greedy, &cost)
        }
        Algorithm::Sbl(cfg) => {
            let (hc, map) = sub.compact();
            let o = sbl_mis_in(&hc, rng, cfg, ws);
            outcome(
                seed,
                map_back(&o.independent_set, &map),
                SolveTrace::Sbl(o.trace),
                &o.cost,
            )
        }
        Algorithm::Permutation => {
            let (hc, map) = sub.compact();
            let o = permutation_mis_in(&hc, rng, ws);
            let permutation = o.permutation.iter().map(|&v| map[v as usize]).collect();
            outcome(
                seed,
                map_back(&o.independent_set, &map),
                SolveTrace::Permutation(permutation),
                &o.cost,
            )
        }
        Algorithm::Linear => {
            let (hc, map) = sub.compact();
            match linear_mis_in(&hc, rng, ws) {
                Ok(o) => outcome(
                    seed,
                    map_back(&o.independent_set, &map),
                    SolveTrace::Linear(o.trace),
                    &o.cost,
                ),
                Err(e) => failed(seed, SolveError::NotLinear(e)),
            }
        }
    };
    ws.put_any("serve.sub", sub);
    out
}

/// Maps a sorted compact-id set back to original ids. `map` (new → old) is
/// ascending by construction of `compact`, so order is preserved.
fn map_back(set: &[VertexId], map: &[VertexId]) -> Vec<VertexId> {
    let mapped: Vec<VertexId> = set.iter().map(|&v| map[v as usize]).collect();
    debug_assert!(mapped.windows(2).all(|w| w[0] < w[1]));
    mapped
}

/// Configuration of a [`ShardedRunner`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker shards (clamped to at least 1).
    pub shards: usize,
    /// Per-shard submission-queue depth; [`ShardedRunner::submit`] blocks
    /// when the target shard has this many requests waiting (backpressure).
    pub queue_depth: usize,
    /// Rayon parallelism granted to each shard's solves (`None` = machine
    /// default). With many shards on a small host, `Some(1)` avoids
    /// oversubscription; by the determinism contract this setting never
    /// changes outcomes, only wall time.
    pub threads_per_shard: Option<usize>,
    /// How admitted requests are assigned to shards (default:
    /// [`RoutePolicy::RoundRobin`]).
    pub route: RoutePolicy,
    /// Per-tenant admission control (default: admit everything).
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: pram::pool::available_parallelism(),
            queue_depth: 64,
            threads_per_shard: None,
            route: RoutePolicy::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Per-shard scheduling counters in a [`ServeStats`] report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Admitted requests routed to this shard so far.
    pub routed: u64,
    /// Requests currently queued on or executing in this shard, as observed
    /// by the collector (decremented when a result *arrives*, so this lags
    /// actual completion by channel latency).
    pub in_queue: u64,
}

/// Per-tenant admission and delivery counters in a [`ServeStats`] report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant these counters describe.
    pub tenant: TenantId,
    /// Total [`submit`](ShardedRunner::submit) calls for this tenant.
    pub submitted: u64,
    /// Requests admitted (routed to a shard).
    pub admitted: u64,
    /// Requests denied with [`DenyReason::QuotaExhausted`].
    pub denied_quota: u64,
    /// Requests denied with [`DenyReason::InFlightCap`].
    pub denied_in_flight: u64,
    /// Outcomes handed to the caller (either collection mode; includes
    /// denial outcomes).
    pub delivered: u64,
    /// Shards this tenant's admitted requests were routed to, ascending.
    /// Under [`RoutePolicy::TenantAffinity`] this has at most one entry.
    pub shards: Vec<usize>,
}

impl TenantStats {
    /// Total denials, either reason.
    pub fn denied(&self) -> u64 {
        self.denied_quota + self.denied_in_flight
    }
}

/// A point-in-time report of a [`ShardedRunner`]'s scheduling and admission
/// counters — see [`ShardedRunner::stats`].
///
/// Per-tenant *rewarm* counters live one layer down, on the workspaces:
/// read them from the [`WorkspacePool`] ([`WorkspacePool::tenant_rewarms`])
/// — live per-shard during serving via the pool's last-checkin snapshots,
/// complete after [`shutdown`](ShardedRunner::shutdown) checks every shard's
/// workspace back in.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// The runner's routing policy.
    pub policy: RoutePolicy,
    /// Total submissions (admitted + denied).
    pub submitted: u64,
    /// Total admitted requests.
    pub admitted: u64,
    /// Total denied requests (both reasons).
    pub denied: u64,
    /// Total outcomes delivered to the caller.
    pub delivered: u64,
    /// Per-shard scheduling counters, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Per-tenant counters, ascending by [`TenantId`].
    pub per_tenant: Vec<TenantStats>,
    /// Per-connection counters, ascending by connection id. Empty for
    /// library runners: only the [`net`](crate::net) front-end has
    /// connections, and its [`Server::shutdown`](crate::net::Server::shutdown)
    /// fills this in (including connections that have already closed).
    pub connections: Vec<ConnectionStats>,
}

/// Per-connection counters of the [`net`](crate::net) front-end, reported
/// through [`ServeStats::connections`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Connection id (assigned by the acceptor in accept order, from 0).
    pub connection: u64,
    /// Request frames decoded and submitted to the runner.
    pub requests: u64,
    /// Response frames written back (outcomes and error frames).
    pub responses: u64,
    /// Frames rejected by the codec (the connection closes after the error
    /// frame is sent — a byte stream cannot be resynchronised past a
    /// framing error).
    pub protocol_errors: u64,
}

struct Job {
    ticket: u64,
    request: SolveRequest,
    // Snapshot resolution made at submission time (`None` for ad-hoc
    // targets). Shipping the `Arc` itself — not just the epoch — keeps the
    // pinned snapshot alive even if retention evicts it, or `compact`
    // re-bases the graph, while the job waits in a shard queue.
    resolved: Option<Result<Arc<ResidentSnapshot>, SolveError>>,
    // Whether that resolution paged a spilled snapshot back in — carried to
    // the worker so the observation lands in *its shard's* spill ledger,
    // the same place evicted-pin touches land.
    paged_in: bool,
}

/// Per-tenant admission bookkeeping (see [`AdmissionConfig`]).
#[derive(Default)]
struct TenantState {
    tokens: u64,
    bucket_initialized: bool,
    last_refill_at: u64,
    in_flight: u64,
    submitted: u64,
    admitted: u64,
    denied_quota: u64,
    denied_in_flight: u64,
    delivered: u64,
    shards: Vec<usize>,
}

/// The tenant-aware sharded serving runner. See the [module docs](self) for
/// the architecture, the routing/admission semantics and the determinism
/// contract.
///
/// Dropping the runner shuts the workers down; prefer
/// [`shutdown`](Self::shutdown) to get the [`WorkspacePool`] (with every
/// shard's warmed workspace checked back in) for the next serve generation.
pub struct ShardedRunner {
    // Held for submission-time snapshot resolution only — workers never
    // touch the registry; each job carries its resolved snapshot `Arc`.
    registry: Arc<ResidentRegistry>,
    senders: Vec<SyncSender<Job>>,
    results: Receiver<SolveOutcome>,
    workers: Vec<(usize, JoinHandle<Workspace>)>,
    pool: WorkspacePool,
    // Raised at shutdown so workers drain their remaining queue without
    // solving it (still-queued work is discarded, not computed).
    cancel: Arc<std::sync::atomic::AtomicBool>,
    route: RoutePolicy,
    admission: AdmissionConfig,
    next_ticket: u64,
    next_deliver: u64,
    delivered_total: u64,
    // Arrived (or locally synthesized) outcomes not yet handed out.
    pending: BTreeMap<u64, SolveOutcome>,
    // Tickets delivered by collect_streaming ahead of the ordered cursor.
    streamed: BTreeSet<u64>,
    // Per-shard scheduling counters (indexed by shard).
    routed: Vec<u64>,
    in_queue: Vec<u64>,
    tenants: BTreeMap<TenantId, TenantState>,
}

impl ShardedRunner {
    /// Spawns `config.shards` workers over a fresh [`WorkspacePool`].
    pub fn new(registry: Arc<ResidentRegistry>, config: &ServeConfig) -> Self {
        Self::with_pool(registry, config, WorkspacePool::new(config.shards.max(1)))
    }

    /// Spawns workers over an existing pool (grown to `config.shards` slots
    /// if needed), so workspaces warmed by a previous serve generation are
    /// rewarmed shard-by-shard instead of rebuilt.
    pub fn with_pool(
        registry: Arc<ResidentRegistry>,
        config: &ServeConfig,
        mut pool: WorkspacePool,
    ) -> Self {
        let shards = config.shards.max(1);
        pool.ensure_shards(shards);
        let (result_tx, results) = channel();
        let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
            let ws = pool.checkout(shard);
            let result_tx = result_tx.clone();
            let cancel = Arc::clone(&cancel);
            let handle = pram::pool::spawn_worker(
                format!("serve-shard-{shard}"),
                config.threads_per_shard,
                move || {
                    let mut runner = BatchRunner::from_workspace(ws);
                    while let Ok(Job {
                        ticket,
                        request,
                        resolved,
                        paged_in,
                    }) = rx.recv()
                    {
                        // Shutdown: drain the queue without solving it.
                        if cancel.load(std::sync::atomic::Ordering::Acquire) {
                            continue;
                        }
                        // Mirror a submission-time page-in into this shard's
                        // spill ledger (one spill observed, one page-in —
                        // the page-in undid exactly one spill).
                        if paged_in {
                            if let Some(id) = request.target.graph_id() {
                                let ws = runner.workspace_mut();
                                ws.note_graph_spilled(id.index as u64);
                                ws.note_graph_paged_in(id.index as u64);
                            }
                        }
                        // Workers never consult the registry: the snapshot
                        // (or error) was fixed at submission time, so a
                        // concurrent apply/compact/eviction cannot retarget
                        // a queued request.
                        let mut out = execute_resolved(&request, resolved, runner.workspace_mut());
                        out.ticket = ticket;
                        out.shard = shard;
                        if result_tx.send(out).is_err() {
                            break;
                        }
                    }
                    runner.into_workspace()
                },
            );
            senders.push(tx);
            workers.push((shard, handle));
        }
        ShardedRunner {
            registry,
            senders,
            results,
            workers,
            pool,
            cancel,
            route: config.route,
            admission: config.admission.clone(),
            next_ticket: 0,
            next_deliver: 0,
            delivered_total: 0,
            pending: BTreeMap::new(),
            streamed: BTreeSet::new(),
            routed: vec![0; shards],
            in_queue: vec![0; shards],
            tenants: BTreeMap::new(),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The runner's routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.route
    }

    /// Submits a request and returns its ticket.
    ///
    /// The request first passes the tenant's admission check (see
    /// [`AdmissionConfig`]); a denied request still consumes its ticket and
    /// is answered with a [`SolveError::AdmissionDenied`] outcome through
    /// the normal collection machinery — rejection as data. Admitted
    /// requests are routed to a shard by the configured [`RoutePolicy`];
    /// this call blocks while the target shard's bounded queue is full
    /// (backpressure).
    pub fn submit(&mut self, mut request: SolveRequest) -> u64 {
        // `next_ticket` doubles as the logical clock admission refill runs
        // on: it advances exactly once per submit call, so a replayed
        // submit/collect sequence sees identical bucket states.
        let now = self.next_ticket;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let tenant = request.tenant;
        let quota = self.admission.quota_for(tenant);
        let st = self.tenants.entry(tenant).or_default();
        st.submitted += 1;
        if let Some(q) = quota {
            if !st.bucket_initialized {
                st.bucket_initialized = true;
                st.tokens = q.burst;
                st.last_refill_at = now;
            } else if let Some(add @ 1..) = (now - st.last_refill_at).checked_div(q.refill_every) {
                // `refill_every == 0` divides to `None`: refill disabled.
                // Saturating arithmetic throughout: with `refill_every` near
                // `u64::MAX`, `add * refill_every` overflows even though
                // `add ≥ 1` — clamping to the logical clock's ceiling keeps
                // the bucket sane instead of wrapping `last_refill_at`
                // backwards (which would mint tokens out of thin air).
                st.tokens = st.tokens.saturating_add(add).min(q.burst);
                st.last_refill_at = st
                    .last_refill_at
                    .saturating_add(add.saturating_mul(q.refill_every));
            }
            // The in-flight cap is checked first and does not consume a
            // token: a capped burst should not also drain the bucket.
            let reason = if q.max_in_flight.is_some_and(|cap| st.in_flight >= cap) {
                st.denied_in_flight += 1;
                Some(DenyReason::InFlightCap)
            } else if st.tokens == 0 {
                st.denied_quota += 1;
                Some(DenyReason::QuotaExhausted)
            } else {
                st.tokens -= 1;
                None
            };
            if let Some(reason) = reason {
                let mut out = failed(request.seed, SolveError::AdmissionDenied { tenant, reason });
                out.ticket = ticket;
                out.tenant = tenant;
                self.pending.insert(ticket, out);
                return ticket;
            }
        }
        // Resolve the target snapshot *now*, on the caller thread: the
        // logical submission order decides which epoch a request sees, never
        // the race between a shard dequeue and a concurrent
        // `ResidentRegistry::apply`. The job carries the snapshot `Arc` (or
        // the resolution error — `UnknownGraph`, `UnknownEpoch`,
        // `EpochEvicted` — as data), so a later eviction or `compact` cannot
        // retarget or fail a request that was admitted against a live epoch.
        let mut paged_in = false;
        let resolved = request.target.graph_id().map(|id| {
            let (resolved, paged) = self.registry.lookup_counted(id, request.pin);
            paged_in = paged;
            resolved
        });
        if let Some(Ok(snap)) = &resolved {
            // Echo the concrete epoch into the pin so the outcome reports it.
            request.pin = EpochPin::At(snap.epoch());
        }
        let shard = match self.route {
            RoutePolicy::RoundRobin => (ticket % self.senders.len() as u64) as usize,
            RoutePolicy::TenantAffinity => affinity_shard(tenant, self.senders.len()),
            RoutePolicy::LeastQueued => self
                .in_queue
                .iter()
                .enumerate()
                .min_by_key(|&(_, &q)| q)
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        let st = self
            .tenants
            .get_mut(&tenant)
            .expect("tenant state just created");
        st.admitted += 1;
        st.in_flight += 1;
        if let Err(i) = st.shards.binary_search(&shard) {
            st.shards.insert(i, shard);
        }
        self.routed[shard] += 1;
        self.in_queue[shard] += 1;
        self.senders[shard]
            .send(Job {
                ticket,
                request,
                resolved,
                paged_in,
            })
            .expect("serve: worker shard disconnected (a worker thread panicked)");
        ticket
    }

    /// Number of submitted requests not yet delivered by either collection
    /// mode.
    pub fn outstanding(&self) -> u64 {
        self.next_ticket - self.delivered_total
    }

    /// Blocks for the next arrival from any shard, with worker-liveness
    /// checks: a plain blocking recv would hang forever if *one* worker of
    /// several died (the survivors keep the channel open but the dead
    /// shard's tickets never arrive), so wait in slices and check worker
    /// liveness on every timeout — during serving no worker thread finishes
    /// except by panicking.
    fn recv_one(&mut self) -> SolveOutcome {
        let out = loop {
            match self
                .results
                .recv_timeout(std::time::Duration::from_millis(50))
            {
                Ok(out) => break out,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if let Some((shard, _)) = self.workers.iter().find(|(_, h)| h.is_finished()) {
                        panic!(
                            "serve: worker shard {shard} died with {} outcomes outstanding",
                            self.outstanding()
                        );
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("serve: all workers disconnected with outcomes outstanding")
                }
            }
        };
        self.in_queue[out.shard] = self.in_queue[out.shard].saturating_sub(1);
        out
    }

    /// Per-delivery bookkeeping shared by both collection modes.
    fn note_delivery(&mut self, out: &SolveOutcome) {
        self.delivered_total += 1;
        let st = self.tenants.entry(out.tenant).or_default();
        st.delivered += 1;
        if !matches!(out.error, Some(SolveError::AdmissionDenied { .. })) {
            // Only admitted requests counted toward the in-flight cap.
            st.in_flight = st.in_flight.saturating_sub(1);
        }
    }

    /// Records a ticket delivered out of order by streaming collection, so
    /// the ordered cursor skips it later.
    fn mark_streamed(&mut self, ticket: u64) {
        if ticket == self.next_deliver {
            self.next_deliver += 1;
            while self.streamed.remove(&self.next_deliver) {
                self.next_deliver += 1;
            }
        } else {
            self.streamed.insert(ticket);
        }
    }

    /// Collects the next `count` outcomes **in submission-ticket order**,
    /// regardless of which shard finished first: out-of-order arrivals are
    /// buffered until their predecessors land. Tickets already delivered by
    /// [`collect_streaming`](Self::collect_streaming) are skipped.
    ///
    /// # Panics
    /// Panics if `count` exceeds [`outstanding`](Self::outstanding) (the
    /// extra outcomes could never arrive), or if a worker died.
    pub fn collect_ordered(&mut self, count: usize) -> Vec<SolveOutcome> {
        assert!(
            count as u64 <= self.outstanding(),
            "serve: asked for {count} outcomes with only {} outstanding",
            self.outstanding()
        );
        let mut delivered = Vec::with_capacity(count);
        while delivered.len() < count {
            while self.streamed.remove(&self.next_deliver) {
                self.next_deliver += 1;
            }
            if let Some(out) = self.pending.remove(&self.next_deliver) {
                self.next_deliver += 1;
                self.note_delivery(&out);
                delivered.push(out);
                continue;
            }
            let out = self.recv_one();
            if out.ticket == self.next_deliver {
                self.next_deliver += 1;
                self.note_delivery(&out);
                delivered.push(out);
            } else {
                self.pending.insert(out.ticket, out);
            }
        }
        delivered
    }

    /// Streaming collection: an iterator over the next `count` outcomes **as
    /// they complete** — out of (ticket) order, minimizing latency to first
    /// result. Each outcome still carries its ticket, so callers can
    /// re-associate responses with submissions; already-buffered outcomes
    /// (including admission denials, which complete instantly) are yielded
    /// first.
    ///
    /// Streaming and ordered collection interoperate on one runner: a later
    /// [`collect_ordered`](Self::collect_ordered) skips tickets this
    /// iterator already delivered. Dropping the iterator early simply leaves
    /// the remaining outcomes outstanding.
    ///
    /// The yielded multiset of outcomes is a **permutation** of what ordered
    /// collection would deliver, with byte-identical per-ticket payloads —
    /// the [determinism contract](self#determinism-contract) pins results,
    /// and only delivery order differs.
    ///
    /// # Panics
    /// Panics at creation if `count` exceeds
    /// [`outstanding`](Self::outstanding); during iteration if a worker
    /// died.
    pub fn collect_streaming(&mut self, count: usize) -> StreamingCollect<'_> {
        assert!(
            count as u64 <= self.outstanding(),
            "serve: asked to stream {count} outcomes with only {} outstanding",
            self.outstanding()
        );
        StreamingCollect {
            runner: self,
            remaining: count,
        }
    }

    /// Non-blocking flavour of streaming collection: yields the next
    /// completed outcome if one is buffered or arrives within `timeout`,
    /// `None` otherwise (including when nothing is outstanding). Delivered
    /// tickets are recorded exactly like
    /// [`collect_streaming`](Self::collect_streaming), so the two modes and
    /// [`collect_ordered`](Self::collect_ordered) interoperate on one
    /// runner. This is the poll the [`net`](crate::net) dispatcher
    /// interleaves with submissions, so decoded requests keep flowing into
    /// the shards while earlier responses stream back out.
    ///
    /// # Panics
    /// Panics if a worker died with outcomes outstanding.
    pub fn try_collect_one(&mut self, timeout: std::time::Duration) -> Option<SolveOutcome> {
        if self.outstanding() == 0 {
            return None;
        }
        let out = match self.pending.pop_first() {
            Some((_, out)) => out,
            None => match self.results.recv_timeout(timeout) {
                Ok(out) => {
                    self.in_queue[out.shard] = self.in_queue[out.shard].saturating_sub(1);
                    out
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if let Some((shard, _)) = self.workers.iter().find(|(_, h)| h.is_finished()) {
                        panic!(
                            "serve: worker shard {shard} died with {} outcomes outstanding",
                            self.outstanding()
                        );
                    }
                    return None;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("serve: all workers disconnected with outcomes outstanding")
                }
            },
        };
        self.mark_streamed(out.ticket);
        self.note_delivery(&out);
        Some(out)
    }

    /// Collects everything still outstanding, in ticket order.
    pub fn collect_outstanding(&mut self) -> Vec<SolveOutcome> {
        self.collect_ordered(self.outstanding() as usize)
    }

    /// Submits a whole stream and returns its outcomes in submission order —
    /// requests pipeline through the shards while earlier results are still
    /// being computed.
    pub fn run_stream(&mut self, requests: Vec<SolveRequest>) -> Vec<SolveOutcome> {
        let n = requests.len();
        for request in requests {
            self.submit(request);
        }
        self.collect_ordered(n)
    }

    /// Shuts the workers down and returns the [`WorkspacePool`] with every
    /// shard's workspace checked back in (warm for the next generation).
    /// Undelivered outcomes are discarded, and still-**queued** requests are
    /// drained without being solved — shutdown waits only for each shard's
    /// in-flight solve, not its backlog.
    pub fn shutdown(mut self) -> WorkspacePool {
        self.shutdown_workers();
        std::mem::take(&mut self.pool)
    }

    /// Aggregate allocation statistics across the shards' workspaces (only
    /// meaningful after [`shutdown`](Self::shutdown) checked them in; during
    /// serving this reports the last-checkin snapshots).
    pub fn pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// A point-in-time [`ServeStats`] report: total and per-tenant
    /// submissions, admissions, denials and deliveries, plus per-shard
    /// routing counters. Under `RoundRobin`/`TenantAffinity` routing the
    /// report is a pure function of the submit/collect call sequence, so it
    /// is replay-deterministic like the outcomes themselves.
    pub fn stats(&self) -> ServeStats {
        let per_shard = (0..self.senders.len())
            .map(|s| ShardStats {
                routed: self.routed[s],
                in_queue: self.in_queue[s],
            })
            .collect();
        let per_tenant: Vec<TenantStats> = self
            .tenants
            .iter()
            .map(|(&tenant, st)| TenantStats {
                tenant,
                submitted: st.submitted,
                admitted: st.admitted,
                denied_quota: st.denied_quota,
                denied_in_flight: st.denied_in_flight,
                delivered: st.delivered,
                shards: st.shards.clone(),
            })
            .collect();
        ServeStats {
            policy: self.route,
            submitted: self.next_ticket,
            admitted: per_tenant.iter().map(|t| t.admitted).sum(),
            denied: per_tenant.iter().map(|t| t.denied()).sum(),
            delivered: self.delivered_total,
            per_shard,
            per_tenant,
            connections: Vec::new(),
        }
    }

    fn shutdown_workers(&mut self) {
        // Tell workers to drain instead of solve, then end their recv loops
        // by dropping the senders.
        self.cancel
            .store(true, std::sync::atomic::Ordering::Release);
        self.senders.clear();
        for (shard, handle) in self.workers.drain(..) {
            if let Ok(ws) = handle.join() {
                self.pool.checkin(shard, ws);
            }
        }
    }
}

impl Drop for ShardedRunner {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

/// The iterator returned by
/// [`ShardedRunner::collect_streaming`]: yields outcomes in completion
/// order, each carrying its submission ticket.
pub struct StreamingCollect<'a> {
    runner: &'a mut ShardedRunner,
    remaining: usize,
}

impl Iterator for StreamingCollect<'_> {
    type Item = SolveOutcome;

    fn next(&mut self) -> Option<SolveOutcome> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Buffered outcomes first (lowest ticket first): admission denials
        // and anything an earlier collect already pulled off the channel.
        let out = match self.runner.pending.pop_first() {
            Some((_, out)) => out,
            None => self.runner.recv_one(),
        };
        self.runner.mark_streamed(out.ticket);
        self.runner.note_delivery(&out);
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for StreamingCollect<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::builder::hypergraph_from_edges;

    fn tiny() -> Hypergraph {
        hypergraph_from_edges(4, vec![vec![0, 1], vec![2, 3]])
    }

    // The two `locate` failure modes are different caller bugs and must be
    // distinguishable from the panic message alone.
    #[test]
    #[should_panic(expected = "minted by a different ResidentRegistry")]
    fn foreign_id_panics_with_registry_mismatch_message() {
        let mut a = ResidentRegistry::new();
        let id = a.register(tiny());
        let b = ResidentRegistry::new();
        let _ = b.latest(id);
    }

    #[test]
    #[should_panic(expected = "index 7 out of range: this registry holds 1 graph(s)")]
    fn out_of_range_index_panics_with_bounds_message() {
        let mut a = ResidentRegistry::new();
        let id = a.register(tiny());
        let bad = GraphId {
            registry: id.registry,
            index: 7,
        };
        let _ = a.latest(bad);
    }

    // The request path must never panic on the same inputs: errors as data.
    #[test]
    fn lookup_reports_foreign_and_out_of_range_ids_as_errors() {
        let mut a = ResidentRegistry::new();
        let id = a.register(tiny());
        let b = ResidentRegistry::new();
        assert_eq!(
            b.lookup(id, EpochPin::Latest).unwrap_err(),
            SolveError::UnknownGraph(id)
        );
        let bad = GraphId {
            registry: id.registry,
            index: 7,
        };
        assert_eq!(
            a.lookup(bad, EpochPin::Latest).unwrap_err(),
            SolveError::UnknownGraph(bad)
        );
        assert_eq!(
            a.lookup(id, EpochPin::At(Epoch(3))).unwrap_err(),
            SolveError::UnknownEpoch {
                graph: id,
                epoch: Epoch(3)
            }
        );
    }

    // Three-way `EpochPin::At` semantics under retention: beyond the tip is
    // `UnknownEpoch` ("never reached"), below the floor is `EpochEvicted`
    // ("was real, history dropped"), and the base + latest epochs always
    // stay resident.
    #[test]
    fn eviction_is_distinguishable_from_unknown_epochs() {
        let mut reg = ResidentRegistry::with_retention(RetentionPolicy::keep_last(1));
        let id = reg.register(tiny());
        for _ in 0..4 {
            reg.apply(id, &[GraphEdit::GrowVertices(1)]).unwrap();
        }
        assert_eq!(reg.retention_floor(id), Epoch(4));
        assert_eq!(reg.retained_snapshots(id), 2); // base + latest
        assert_eq!(reg.evictions(id), 3);
        assert!(reg.lookup(id, EpochPin::At(Epoch(0))).is_ok());
        assert!(reg.lookup(id, EpochPin::At(Epoch(4))).is_ok());
        assert_eq!(
            reg.lookup(id, EpochPin::At(Epoch(2))).unwrap_err(),
            SolveError::EpochEvicted {
                graph: id,
                epoch: Epoch(2),
                floor: Epoch(4),
            }
        );
        assert_eq!(
            reg.lookup(id, EpochPin::At(Epoch(9))).unwrap_err(),
            SolveError::UnknownEpoch {
                graph: id,
                epoch: Epoch(9),
            }
        );
    }

    // Compaction truncates history but preserves epoch numbers: the latest
    // epoch survives as the new base, everything older is evicted.
    #[test]
    fn compact_rebases_onto_the_latest_snapshot() {
        let mut reg = ResidentRegistry::new();
        let id = reg.register(tiny());
        reg.apply(id, &[GraphEdit::GrowVertices(2)]).unwrap();
        reg.apply(id, &[GraphEdit::AddEdge(vec![4, 5])]).unwrap();
        let before = reg.latest(id);
        assert_eq!(reg.compact(id), Epoch(2));
        assert_eq!(reg.base_epoch(id), Epoch(2));
        assert_eq!(reg.edit_log(id).len(), 0);
        assert_eq!(reg.retained_snapshots(id), 1);
        let after = reg.latest(id);
        assert_eq!(after.epoch(), Epoch(2));
        assert_eq!(after.log_len(), 0);
        // The rebased snapshot shares the same graph, not a rebuilt copy.
        assert!(std::ptr::eq(before.graph(), after.graph()));
        assert_eq!(
            reg.lookup(id, EpochPin::At(Epoch(1))).unwrap_err(),
            SolveError::EpochEvicted {
                graph: id,
                epoch: Epoch(1),
                floor: Epoch(2),
            }
        );
        // Post-compact edits continue the same epoch sequence.
        reg.apply(id, &[GraphEdit::GrowVertices(1)]).unwrap();
        assert_eq!(reg.latest(id).epoch(), Epoch(3));
        assert_eq!(reg.latest(id).log_len(), 1);
    }

    /// A unique temp path for snapshot-file tests (same idiom as the WAL
    /// round-trip tests in `tests/registry.rs`).
    fn temp_csr(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hgmis-serve-{tag}-{}.hgcsr", std::process::id()))
    }

    // `persist_snapshot` → `open_mapped` round-trips the graph bit-for-bit
    // and registers it on the mapped tier.
    #[test]
    fn persist_snapshot_then_open_mapped_round_trips() {
        let path = temp_csr("roundtrip");
        let mut reg = ResidentRegistry::new();
        let id = reg.register(tiny());
        reg.persist_snapshot(id, &path).unwrap();

        let mut reopened = ResidentRegistry::new();
        let mid = reopened.open_mapped(&path).unwrap();
        let orig = reg.latest(id);
        let mapped = reopened.latest(mid);
        assert_eq!(orig.graph(), mapped.graph());
        assert_eq!(mapped.graph().storage_kind(), "mapped");
        assert_eq!(mapped.epoch(), Epoch(0));
        assert!(!reopened.is_spilled(mid));
        std::fs::remove_file(&path).ok();
    }

    // `resident_bytes` sums the base arenas of every resident snapshot,
    // whichever tier they live on.
    #[test]
    fn resident_bytes_counts_owned_and_mapped_arenas() {
        let path = temp_csr("bytes");
        let per_graph = tiny().bytes_resident() as u64;
        let mut reg = ResidentRegistry::new();
        let owned = reg.register(tiny());
        assert_eq!(reg.resident_bytes(), per_graph);
        reg.persist_snapshot(owned, &path).unwrap();
        reg.open_mapped(&path).unwrap();
        assert_eq!(reg.resident_bytes(), 2 * per_graph);
        std::fs::remove_file(&path).ok();
    }

    // Under a byte cap the least-recently-touched mapped entry spills, and a
    // later query pages it back in (possibly spilling the other entry in
    // turn). Counters track every transition.
    #[test]
    fn spill_policy_evicts_lru_and_queries_page_back_in() {
        let pa = temp_csr("lru-a");
        let pb = temp_csr("lru-b");
        hypergraph::io::write_csr(&tiny(), &pa).unwrap();
        hypergraph::io::write_csr(&tiny(), &pb).unwrap();
        let per_graph = tiny().bytes_resident() as u64;

        // Cap = one graph: whichever entry is LRU must give way.
        let mut reg = ResidentRegistry::with_spill(SpillPolicy::max_bytes(per_graph));
        let a = reg.open_mapped(&pa).unwrap();
        let b = reg.open_mapped(&pb).unwrap();
        assert!(reg.is_spilled(a), "oldest mapped entry spills first");
        assert!(!reg.is_spilled(b));
        assert_eq!(reg.spills(a), 1);
        assert_eq!(reg.resident_bytes(), per_graph);

        // Touching the spilled entry pages it in; `b` is now LRU and spills.
        let snap = reg.latest(a);
        assert_eq!(snap.graph(), &tiny());
        assert!(!reg.is_spilled(a));
        assert!(reg.is_spilled(b));
        assert_eq!(reg.page_ins(a), 1);
        assert_eq!(reg.spills(b), 1);
        assert_eq!(reg.resident_bytes(), per_graph);

        // A spilled graph still reports its metadata without paging in.
        assert_eq!(reg.current_epoch(b), Epoch(0));
        assert_eq!(reg.retained_snapshots(b), 0);
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    // The request path resolves pins against a paged-in base snapshot with
    // the same three-way semantics as a resident entry, and reports the
    // page-in so the workspace ledgers can mirror it.
    #[test]
    fn lookup_pages_in_spilled_entries_and_reports_it() {
        let path = temp_csr("lookup");
        hypergraph::io::write_csr(&tiny(), &path).unwrap();
        let mut reg = ResidentRegistry::with_spill(SpillPolicy::max_bytes(0));
        let id = reg.open_mapped(&path).unwrap();
        assert!(reg.is_spilled(id), "a zero cap spills immediately");
        assert_eq!(reg.resident_bytes(), 0);

        let (res, paged_in) = reg.lookup_counted(id, EpochPin::Latest);
        assert!(paged_in);
        assert_eq!(res.unwrap().graph(), &tiny());
        // The zero cap re-spills as soon as the query's Arc is handed out.
        assert!(reg.is_spilled(id));
        assert_eq!(reg.spills(id), 2);
        assert_eq!(reg.page_ins(id), 1);

        // Pinned lookups agree with resident semantics: the base epoch
        // resolves, an epoch beyond the tip is unknown.
        let (res, paged_in) = reg.lookup_counted(id, EpochPin::At(Epoch(0)));
        assert!(paged_in);
        assert!(res.is_ok());
        let (res, _) = reg.lookup_counted(id, EpochPin::At(Epoch(5)));
        assert_eq!(
            res.unwrap_err(),
            SolveError::UnknownEpoch {
                graph: id,
                epoch: Epoch(5)
            }
        );
        std::fs::remove_file(&path).ok();
    }

    // Spilling is only sound while the snapshot file is the entry's complete
    // state: the first `apply` pages the graph in and pins it resident for
    // good (its log exists nowhere on disk).
    #[test]
    fn mutation_pages_in_and_pins_the_entry_resident() {
        let path = temp_csr("pin");
        hypergraph::io::write_csr(&tiny(), &path).unwrap();
        let mut reg = ResidentRegistry::with_spill(SpillPolicy::max_bytes(0));
        let id = reg.open_mapped(&path).unwrap();
        assert!(reg.is_spilled(id));

        let epoch = reg.apply(id, &[GraphEdit::GrowVertices(1)]).unwrap();
        assert_eq!(epoch, Epoch(1));
        assert!(!reg.is_spilled(id), "a mutated entry never spills");
        assert_eq!(reg.spills(id), 1);
        assert_eq!(reg.page_ins(id), 1);
        assert_eq!(reg.latest(id).graph().n_vertices(), 5);

        // Still pinned after further traffic that the cap would otherwise
        // evict.
        let _ = reg.latest(id);
        assert!(!reg.is_spilled(id));
        std::fs::remove_file(&path).ok();
    }

    // A spilled entry whose snapshot file has vanished is an error on the
    // request path (errors as data), not a panic.
    #[test]
    fn missing_source_is_an_error_on_the_request_path() {
        let path = temp_csr("gone-lookup");
        hypergraph::io::write_csr(&tiny(), &path).unwrap();
        let mut reg = ResidentRegistry::with_spill(SpillPolicy::max_bytes(0));
        let id = reg.open_mapped(&path).unwrap();
        assert!(reg.is_spilled(id));
        std::fs::remove_file(&path).unwrap();

        let (res, paged_in) = reg.lookup_counted(id, EpochPin::Latest);
        assert!(!paged_in);
        match res.unwrap_err() {
            SolveError::SnapshotUnavailable { graph, detail } => {
                assert_eq!(graph, id);
                assert!(detail.contains("cannot re-open"), "detail: {detail}");
            }
            other => panic!("expected SnapshotUnavailable, got {other:?}"),
        }
    }

    // The same failure on a direct accessor is a caller-visible panic with
    // the documented message.
    #[test]
    #[should_panic(expected = "spilled resident graph could not be paged back in")]
    fn missing_source_panics_on_direct_accessors() {
        let path = temp_csr("gone-latest");
        hypergraph::io::write_csr(&tiny(), &path).unwrap();
        let mut reg = ResidentRegistry::with_spill(SpillPolicy::max_bytes(0));
        let id = reg.open_mapped(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let _ = reg.latest(id);
    }
}
