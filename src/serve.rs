//! The sharded serving subsystem: a worker-pool layer that fans a stream of
//! MIS solve requests across N shards with deterministic stream semantics.
//!
//! # Architecture
//!
//! ```text
//!                    submit() ──► bounded queue ──► shard 0: BatchRunner(Workspace 0)─┐
//! client (tickets)   submit() ──► bounded queue ──► shard 1: BatchRunner(Workspace 1)─┼─► collect_ordered()
//!                    submit() ──► bounded queue ──► shard 2: BatchRunner(Workspace 2)─┘
//!                                        ▲                        │ read-only
//!                                        │                 Arc<ResidentRegistry>
//! ```
//!
//! A [`ShardedRunner`] owns N long-lived worker threads (hosted by
//! [`pram::pool::spawn_worker`]). Each worker is exactly a
//! [`BatchRunner`](crate::batch::BatchRunner) in a loop — the single-shard
//! special case *is* the batch runner — with its own
//! [`Workspace`](pram::Workspace) checked out of a
//! [`WorkspacePool`](pram::WorkspacePool) by shard index, so parked engines
//! and warmed buffers stay **shard-local** across serve generations.
//! Requests are distributed round-robin by ticket over per-shard **bounded**
//! queues: [`ShardedRunner::submit`] blocks once the target shard's queue is
//! full (backpressure), while results flow back over an unbounded channel so
//! workers never block.
//!
//! Resident graphs live in a [`ResidentRegistry`], frozen behind an `Arc`
//! when the runner spawns: workers only ever read it (`&self` induction —
//! see the concurrency section of [`hypergraph::ActiveEngine`]), deriving
//! per-query sub-instances into their own shard-local engines.
//!
//! # Determinism contract
//!
//! Every request's outcome is a **pure function of `(graph, algorithm,
//! seed)`**: the per-request RNG is derived from [`SolveRequest::seed`], the
//! workspace never influences results (the PR-3 contract), and the resident
//! registry is immutable. Shard count, queue depth, scheduling and thread
//! count may change wall time but never a single independent set, trace or
//! cost total — `tests/serve.rs` pins outcomes across 1/2/4/8 shards against
//! the sequential [`BatchRunner::solve`](crate::batch::BatchRunner::solve)
//! path. [`ShardedRunner::collect_ordered`] additionally guarantees
//! *delivery* in submission-ticket order regardless of which shard finished
//! first.
//!
//! ```
//! use hypergraph_mis::serve::{
//!     Algorithm, ResidentRegistry, ServeConfig, ShardedRunner, SolveRequest, Target,
//! };
//! use hypergraph_mis::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use std::sync::Arc;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let mut registry = ResidentRegistry::new();
//! let resident = registry.register(generate::paper_regime(&mut rng, 200, 40, 8));
//! let registry = Arc::new(registry);
//!
//! let mut runner = ShardedRunner::new(
//!     Arc::clone(&registry),
//!     &ServeConfig { shards: 2, queue_depth: 16, threads_per_shard: Some(1) },
//! );
//! for seed in 0..6u64 {
//!     runner.submit(SolveRequest {
//!         target: Target::Resident(resident),
//!         algorithm: Algorithm::Sbl(SblConfig::default()),
//!         seed,
//!     });
//! }
//! let outcomes = runner.collect_ordered(6);
//! assert_eq!(outcomes.len(), 6);
//! for (i, out) in outcomes.iter().enumerate() {
//!     assert_eq!(out.ticket, i as u64);
//!     assert!(verify_mis(registry.graph(resident), &out.independent_set).is_ok());
//! }
//! ```

use crate::batch::BatchRunner;
use hypergraph::{ActiveHypergraph, Hypergraph, VertexId};
use mis_core::linear::LinearError;
use mis_core::prelude::*;
use pram::cost::CostTracker;
use pram::{Workspace, WorkspacePool};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle to a graph registered in a [`ResidentRegistry`]. The handle
/// remembers *which* registry minted it (a process-unique tag), so an id
/// from one registry can never silently resolve against another — a foreign
/// id is [`SolveError::UnknownGraph`] on the request path and a panic on the
/// direct accessors, never another tenant's graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId {
    registry: u64,
    index: usize,
}

/// The resident-graph registry: graphs that stay loaded across a serve
/// session, each paired with a prebuilt [`ActiveHypergraph`] engine that
/// induced queries derive their sub-instances from.
///
/// Register every tenant **before** wrapping the registry in an `Arc` and
/// spawning a [`ShardedRunner`] — once serving starts the registry is shared
/// read-only across shards (that immutability is what makes concurrent
/// `&self` induction sound; see the module docs).
#[derive(Debug)]
pub struct ResidentRegistry {
    tag: u64,
    entries: Vec<ResidentGraph>,
}

impl Default for ResidentRegistry {
    fn default() -> Self {
        // Process-unique registry tag; the counter value never influences
        // solve outcomes, only id↔registry matching.
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_REGISTRY_TAG: AtomicU64 = AtomicU64::new(0);
        ResidentRegistry {
            tag: NEXT_REGISTRY_TAG.fetch_add(1, Ordering::Relaxed),
            entries: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct ResidentGraph {
    graph: Hypergraph,
    engine: ActiveHypergraph,
}

impl ResidentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` as a resident tenant, building its induction engine
    /// eagerly, and returns its handle.
    pub fn register(&mut self, graph: Hypergraph) -> GraphId {
        let engine = ActiveHypergraph::from_hypergraph(&graph);
        self.entries.push(ResidentGraph { graph, engine });
        GraphId {
            registry: self.tag,
            index: self.entries.len() - 1,
        }
    }

    /// The registered hypergraph behind `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry.
    pub fn graph(&self, id: GraphId) -> &Hypergraph {
        &self
            .get(id)
            .expect("GraphId from a different registry")
            .graph
    }

    /// The prebuilt induction engine behind `id`.
    ///
    /// # Panics
    /// Panics if `id` did not come from this registry.
    pub fn engine(&self, id: GraphId) -> &ActiveHypergraph {
        &self
            .get(id)
            .expect("GraphId from a different registry")
            .engine
    }

    fn get(&self, id: GraphId) -> Option<&ResidentGraph> {
        if id.registry != self.tag {
            return None;
        }
        self.entries.get(id.index)
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no graph has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Which algorithm a [`SolveRequest`] runs (all six are servable, both as
/// full solves and as induced queries).
#[derive(Debug, Clone)]
pub enum Algorithm {
    /// SBL (Algorithm 1, the paper's contribution).
    Sbl(SblConfig),
    /// Beame–Luby (Algorithm 2) — the induced-query headliner.
    Bl(BlConfig),
    /// Karp–Upfal–Wigderson style parallel search.
    Kuw,
    /// Sequential greedy (deterministic; the request seed is unused).
    Greedy,
    /// Random-permutation greedy.
    Permutation,
    /// Łuczak–Szymańska-style linear-hypergraph MIS (errors on non-linear
    /// instances instead of panicking — see [`SolveError::NotLinear`]).
    Linear,
}

impl Algorithm {
    /// Short stable name (used in traces, logs and bench tables).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Sbl(_) => "sbl",
            Algorithm::Bl(_) => "bl",
            Algorithm::Kuw => "kuw",
            Algorithm::Greedy => "greedy",
            Algorithm::Permutation => "permutation",
            Algorithm::Linear => "linear",
        }
    }
}

/// What a [`SolveRequest`] solves.
#[derive(Debug, Clone)]
pub enum Target {
    /// A one-off instance shipped with the request (shared, not copied, per
    /// shard).
    Adhoc(Arc<Hypergraph>),
    /// A full solve of a resident graph.
    Resident(GraphId),
    /// The sub-hypergraph of a resident graph induced by `vertices` (keeping
    /// edges fully inside the set — SBL's `H'` semantics). Vertex ids must be
    /// valid for the graph and duplicate-free; violations come back as
    /// [`SolveError::InvalidQuery`], not panics.
    Induced {
        /// The resident graph queried.
        graph: GraphId,
        /// The inducing vertex set (any order, duplicate-free).
        vertices: Arc<Vec<VertexId>>,
    },
}

/// One unit of work for the serving layer. Outcomes are a pure function of
/// `(target, algorithm, seed)` — see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// What to solve.
    pub target: Target,
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Per-request RNG seed (`ChaCha8Rng::seed_from_u64`).
    pub seed: u64,
}

/// Per-algorithm instrumentation carried by a [`SolveOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveTrace {
    /// SBL per-round trace.
    Sbl(SblTrace),
    /// Beame–Luby per-stage trace.
    Bl(BlTrace),
    /// KUW per-round trace.
    Kuw(KuwTrace),
    /// Greedy has no trace beyond its cost totals.
    Greedy,
    /// The sampled permutation (processing order, original vertex ids).
    Permutation(Vec<VertexId>),
    /// Linear-hypergraph per-stage trace (BL-shaped).
    Linear(BlTrace),
    /// The request failed before producing a trace (see
    /// [`SolveOutcome::error`]).
    Failed,
}

/// A request-level failure, reported as data instead of panicking a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// [`Algorithm::Linear`] on a non-linear instance.
    NotLinear(LinearError),
    /// The request referenced a [`GraphId`] not present in the registry.
    UnknownGraph(GraphId),
    /// An induced query listed an out-of-range or duplicate vertex id.
    InvalidQuery {
        /// The offending vertex id.
        vertex: VertexId,
        /// `true` if the id was listed twice, `false` if out of range.
        duplicate: bool,
    },
}

/// The response to one [`SolveRequest`].
///
/// `ticket` and `shard` describe *scheduling* (which submission this answers
/// and who computed it); everything else is the deterministic payload. Use
/// [`fingerprint`](Self::fingerprint) to compare outcomes across shard
/// counts or against the sequential path — it excludes the shard.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Submission ticket this outcome answers (assigned by
    /// [`ShardedRunner::submit`]; 0 for direct
    /// [`BatchRunner::solve`](crate::batch::BatchRunner::solve) calls).
    pub ticket: u64,
    /// Shard that computed it (0 for the sequential path). Diagnostic only —
    /// deliberately excluded from [`fingerprint`](Self::fingerprint).
    pub shard: usize,
    /// The request's RNG seed, echoed back.
    pub seed: u64,
    /// The maximal independent set (sorted, original vertex ids; empty on
    /// error).
    pub independent_set: Vec<VertexId>,
    /// Total work charged by the cost model.
    pub work: u64,
    /// Total depth charged by the cost model.
    pub depth: u64,
    /// Rounds (global synchronisation barriers) charged by the cost model.
    pub rounds: u64,
    /// Per-algorithm instrumentation.
    pub trace: SolveTrace,
    /// `Some` if the request failed (the deterministic payload fields are
    /// then empty/zero).
    pub error: Option<SolveError>,
}

/// The deterministic part of a [`SolveOutcome`] (everything but the shard
/// and ticket): equal across shard counts, scheduling and pool generations.
pub type SolveFingerprint = (
    u64,
    Vec<VertexId>,
    u64,
    u64,
    u64,
    SolveTrace,
    Option<SolveError>,
);

impl SolveOutcome {
    /// Extracts the scheduling-independent payload: `(seed, independent set,
    /// work, depth, rounds, trace, error)`.
    pub fn fingerprint(&self) -> SolveFingerprint {
        (
            self.seed,
            self.independent_set.clone(),
            self.work,
            self.depth,
            self.rounds,
            self.trace.clone(),
            self.error.clone(),
        )
    }
}

/// Executes one request against a workspace — the single-shard solve core
/// shared by [`BatchRunner::solve`](crate::batch::BatchRunner::solve) and
/// every [`ShardedRunner`] worker, which is what makes the sequential path
/// and all shard counts agree structurally, not just by test.
pub(crate) fn execute(
    registry: &ResidentRegistry,
    req: &SolveRequest,
    ws: &mut Workspace,
) -> SolveOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(req.seed);
    match &req.target {
        Target::Adhoc(h) => solve_full(h, &req.algorithm, req.seed, &mut rng, ws),
        Target::Resident(id) => match registry.get(*id) {
            Some(r) => solve_full(&r.graph, &req.algorithm, req.seed, &mut rng, ws),
            None => failed(req.seed, SolveError::UnknownGraph(*id)),
        },
        Target::Induced { graph, vertices } => match registry.get(*graph) {
            Some(r) => solve_induced(&r.engine, vertices, &req.algorithm, req.seed, &mut rng, ws),
            None => failed(req.seed, SolveError::UnknownGraph(*graph)),
        },
    }
}

fn failed(seed: u64, error: SolveError) -> SolveOutcome {
    SolveOutcome {
        ticket: 0,
        shard: 0,
        seed,
        independent_set: Vec::new(),
        work: 0,
        depth: 0,
        rounds: 0,
        trace: SolveTrace::Failed,
        error: Some(error),
    }
}

fn outcome(
    seed: u64,
    independent_set: Vec<VertexId>,
    trace: SolveTrace,
    cost: &CostTracker,
) -> SolveOutcome {
    let c = cost.cost();
    SolveOutcome {
        ticket: 0,
        shard: 0,
        seed,
        independent_set,
        work: c.work,
        depth: c.depth,
        rounds: cost.rounds(),
        trace,
        error: None,
    }
}

/// A full solve: the plain `*_in` entry points over the request's hypergraph.
fn solve_full(
    h: &Hypergraph,
    algorithm: &Algorithm,
    seed: u64,
    rng: &mut ChaCha8Rng,
    ws: &mut Workspace,
) -> SolveOutcome {
    match algorithm {
        Algorithm::Sbl(cfg) => {
            let o = sbl_mis_in(h, rng, cfg, ws);
            outcome(seed, o.independent_set, SolveTrace::Sbl(o.trace), &o.cost)
        }
        Algorithm::Bl(cfg) => {
            let o = bl_mis_in(h, rng, cfg, ws);
            outcome(seed, o.independent_set, SolveTrace::Bl(o.trace), &o.cost)
        }
        Algorithm::Kuw => {
            let o = kuw_mis_in(h, rng, ws);
            outcome(seed, o.independent_set, SolveTrace::Kuw(o.trace), &o.cost)
        }
        Algorithm::Greedy => {
            let o = greedy_mis_in(h, None, ws);
            outcome(seed, o.independent_set, SolveTrace::Greedy, &o.cost)
        }
        Algorithm::Permutation => {
            let o = permutation_mis_in(h, rng, ws);
            outcome(
                seed,
                o.independent_set,
                SolveTrace::Permutation(o.permutation),
                &o.cost,
            )
        }
        Algorithm::Linear => match linear_mis_in(h, rng, ws) {
            Ok(o) => outcome(
                seed,
                o.independent_set,
                SolveTrace::Linear(o.trace),
                &o.cost,
            ),
            Err(e) => failed(seed, SolveError::NotLinear(e)),
        },
    }
}

/// An induced query: derive the sub-instance through the resident engine's
/// incidence into a shard-local engine slot, then solve it.
///
/// BL/KUW/greedy run directly on the sub-engine (their `*_on_active_in`
/// paths). SBL/permutation/linear have no on-engine entry point, so the
/// sub-instance is compacted to a standalone hypergraph and the answer is
/// mapped back to original ids — deterministic either way.
fn solve_induced(
    parent: &ActiveHypergraph,
    vertices: &[VertexId],
    algorithm: &Algorithm,
    seed: u64,
    rng: &mut ChaCha8Rng,
    ws: &mut Workspace,
) -> SolveOutcome {
    let id_space = parent.id_space();
    // Mark the query set, validating as we go; the buffer is pooled under a
    // trusted-clean key, so the unwind below must cover every bit we set.
    let mut marked = ws.take_flags_clean("serve.marked", id_space);
    let mut invalid: Option<SolveError> = None;
    let mut set_upto = 0usize;
    for (i, &v) in vertices.iter().enumerate() {
        if (v as usize) >= id_space {
            invalid = Some(SolveError::InvalidQuery {
                vertex: v,
                duplicate: false,
            });
            set_upto = i;
            break;
        }
        if marked[v as usize] {
            invalid = Some(SolveError::InvalidQuery {
                vertex: v,
                duplicate: true,
            });
            set_upto = i;
            break;
        }
        marked[v as usize] = true;
    }
    if let Some(error) = invalid {
        for &v in &vertices[..set_upto] {
            marked[v as usize] = false;
        }
        ws.put_flags("serve.marked", marked);
        return failed(seed, error);
    }

    let mut sub: ActiveHypergraph = ws
        .take_any::<ActiveHypergraph>("serve.sub")
        .unwrap_or_else(|| ActiveHypergraph::from_parts(Vec::new(), Vec::new()));
    parent.induced_by_into(&marked, vertices, &mut sub);
    for &v in vertices {
        marked[v as usize] = false;
    }
    ws.put_flags("serve.marked", marked);

    let mut cost = CostTracker::new();
    let out = match algorithm {
        Algorithm::Bl(cfg) => {
            let (set, trace) = mis_core::bl::bl_on_active_in(&mut sub, rng, cfg, &mut cost, ws);
            outcome(seed, set, SolveTrace::Bl(trace), &cost)
        }
        Algorithm::Kuw => {
            let (set, trace) = mis_core::kuw::kuw_on_active_in(&mut sub, rng, &mut cost, ws);
            outcome(seed, set, SolveTrace::Kuw(trace), &cost)
        }
        Algorithm::Greedy => {
            let set = greedy_on_active_in(&sub, &mut cost, ws);
            outcome(seed, set, SolveTrace::Greedy, &cost)
        }
        Algorithm::Sbl(cfg) => {
            let (hc, map) = sub.compact();
            let o = sbl_mis_in(&hc, rng, cfg, ws);
            outcome(
                seed,
                map_back(&o.independent_set, &map),
                SolveTrace::Sbl(o.trace),
                &o.cost,
            )
        }
        Algorithm::Permutation => {
            let (hc, map) = sub.compact();
            let o = permutation_mis_in(&hc, rng, ws);
            let permutation = o.permutation.iter().map(|&v| map[v as usize]).collect();
            outcome(
                seed,
                map_back(&o.independent_set, &map),
                SolveTrace::Permutation(permutation),
                &o.cost,
            )
        }
        Algorithm::Linear => {
            let (hc, map) = sub.compact();
            match linear_mis_in(&hc, rng, ws) {
                Ok(o) => outcome(
                    seed,
                    map_back(&o.independent_set, &map),
                    SolveTrace::Linear(o.trace),
                    &o.cost,
                ),
                Err(e) => failed(seed, SolveError::NotLinear(e)),
            }
        }
    };
    ws.put_any("serve.sub", sub);
    out
}

/// Maps a sorted compact-id set back to original ids. `map` (new → old) is
/// ascending by construction of `compact`, so order is preserved.
fn map_back(set: &[VertexId], map: &[VertexId]) -> Vec<VertexId> {
    let mapped: Vec<VertexId> = set.iter().map(|&v| map[v as usize]).collect();
    debug_assert!(mapped.windows(2).all(|w| w[0] < w[1]));
    mapped
}

/// Configuration of a [`ShardedRunner`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker shards (clamped to at least 1).
    pub shards: usize,
    /// Per-shard submission-queue depth; [`ShardedRunner::submit`] blocks
    /// when the target shard has this many requests waiting (backpressure).
    pub queue_depth: usize,
    /// Rayon parallelism granted to each shard's solves (`None` = machine
    /// default). With many shards on a small host, `Some(1)` avoids
    /// oversubscription; by the determinism contract this setting never
    /// changes outcomes, only wall time.
    pub threads_per_shard: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: pram::pool::available_parallelism(),
            queue_depth: 64,
            threads_per_shard: None,
        }
    }
}

struct Job {
    ticket: u64,
    request: SolveRequest,
}

/// The sharded serving runner. See the [module docs](self) for the
/// architecture and the determinism contract.
///
/// Dropping the runner shuts the workers down; prefer
/// [`shutdown`](Self::shutdown) to get the [`WorkspacePool`] (with every
/// shard's warmed workspace checked back in) for the next serve generation.
pub struct ShardedRunner {
    senders: Vec<SyncSender<Job>>,
    results: Receiver<SolveOutcome>,
    workers: Vec<(usize, JoinHandle<Workspace>)>,
    pool: WorkspacePool,
    // Raised at shutdown so workers drain their remaining queue without
    // solving it (still-queued work is discarded, not computed).
    cancel: Arc<std::sync::atomic::AtomicBool>,
    next_ticket: u64,
    next_deliver: u64,
    pending: BTreeMap<u64, SolveOutcome>,
}

impl ShardedRunner {
    /// Spawns `config.shards` workers over a fresh [`WorkspacePool`].
    pub fn new(registry: Arc<ResidentRegistry>, config: &ServeConfig) -> Self {
        Self::with_pool(registry, config, WorkspacePool::new(config.shards.max(1)))
    }

    /// Spawns workers over an existing pool (grown to `config.shards` slots
    /// if needed), so workspaces warmed by a previous serve generation are
    /// rewarmed shard-by-shard instead of rebuilt.
    pub fn with_pool(
        registry: Arc<ResidentRegistry>,
        config: &ServeConfig,
        mut pool: WorkspacePool,
    ) -> Self {
        let shards = config.shards.max(1);
        pool.ensure_shards(shards);
        let (result_tx, results) = channel();
        let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
            let ws = pool.checkout(shard);
            let registry = Arc::clone(&registry);
            let result_tx = result_tx.clone();
            let cancel = Arc::clone(&cancel);
            let handle = pram::pool::spawn_worker(
                format!("serve-shard-{shard}"),
                config.threads_per_shard,
                move || {
                    let mut runner = BatchRunner::from_workspace(ws);
                    while let Ok(Job { ticket, request }) = rx.recv() {
                        // Shutdown: drain the queue without solving it.
                        if cancel.load(std::sync::atomic::Ordering::Acquire) {
                            continue;
                        }
                        let mut out = runner.solve(&registry, &request);
                        out.ticket = ticket;
                        out.shard = shard;
                        if result_tx.send(out).is_err() {
                            break;
                        }
                    }
                    runner.into_workspace()
                },
            );
            senders.push(tx);
            workers.push((shard, handle));
        }
        ShardedRunner {
            senders,
            results,
            workers,
            pool,
            cancel,
            next_ticket: 0,
            next_deliver: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Submits a request and returns its ticket. Requests are routed
    /// round-robin (`ticket % shards`) — a deterministic assignment, so a
    /// replayed stream lands on the same shards. Blocks while the target
    /// shard's bounded queue is full.
    pub fn submit(&mut self, request: SolveRequest) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let shard = (ticket % self.senders.len() as u64) as usize;
        self.senders[shard]
            .send(Job { ticket, request })
            .expect("serve: worker shard disconnected (a worker thread panicked)");
        ticket
    }

    /// Number of submitted requests not yet delivered by
    /// [`collect_ordered`](Self::collect_ordered).
    pub fn outstanding(&self) -> u64 {
        self.next_ticket - self.next_deliver
    }

    /// Collects the next `count` outcomes **in submission-ticket order**,
    /// regardless of which shard finished first: out-of-order arrivals are
    /// buffered until their predecessors land.
    ///
    /// # Panics
    /// Panics if `count` exceeds [`outstanding`](Self::outstanding) (the
    /// extra outcomes could never arrive), or if a worker died.
    pub fn collect_ordered(&mut self, count: usize) -> Vec<SolveOutcome> {
        assert!(
            count as u64 <= self.outstanding(),
            "serve: asked for {count} outcomes with only {} outstanding",
            self.outstanding()
        );
        let mut delivered = Vec::with_capacity(count);
        while delivered.len() < count {
            if let Some(out) = self.pending.remove(&self.next_deliver) {
                self.next_deliver += 1;
                delivered.push(out);
                continue;
            }
            // A plain blocking recv would hang forever if *one* worker of
            // several died (the survivors keep the channel open but the dead
            // shard's tickets never arrive), so wait in slices and check
            // worker liveness on every timeout — during serving no worker
            // thread finishes except by panicking.
            let out = loop {
                match self
                    .results
                    .recv_timeout(std::time::Duration::from_millis(50))
                {
                    Ok(out) => break out,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        if let Some((shard, _)) = self.workers.iter().find(|(_, h)| h.is_finished())
                        {
                            panic!(
                                "serve: worker shard {shard} died with {} outcomes outstanding",
                                self.outstanding()
                            );
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                        panic!("serve: all workers disconnected with outcomes outstanding")
                    }
                }
            };
            if out.ticket == self.next_deliver {
                self.next_deliver += 1;
                delivered.push(out);
            } else {
                self.pending.insert(out.ticket, out);
            }
        }
        delivered
    }

    /// Collects everything still outstanding, in ticket order.
    pub fn collect_outstanding(&mut self) -> Vec<SolveOutcome> {
        self.collect_ordered(self.outstanding() as usize)
    }

    /// Submits a whole stream and returns its outcomes in submission order —
    /// requests pipeline through the shards while earlier results are still
    /// being computed.
    pub fn run_stream(&mut self, requests: Vec<SolveRequest>) -> Vec<SolveOutcome> {
        let n = requests.len();
        for request in requests {
            self.submit(request);
        }
        self.collect_ordered(n)
    }

    /// Shuts the workers down and returns the [`WorkspacePool`] with every
    /// shard's workspace checked back in (warm for the next generation).
    /// Undelivered outcomes are discarded, and still-**queued** requests are
    /// drained without being solved — shutdown waits only for each shard's
    /// in-flight solve, not its backlog.
    pub fn shutdown(mut self) -> WorkspacePool {
        self.shutdown_workers();
        std::mem::take(&mut self.pool)
    }

    /// Aggregate allocation statistics across the shards' workspaces (only
    /// meaningful after [`shutdown`](Self::shutdown) checked them in; during
    /// serving this reports the last-checkin snapshots).
    pub fn pool(&self) -> &WorkspacePool {
        &self.pool
    }

    fn shutdown_workers(&mut self) {
        // Tell workers to drain instead of solve, then end their recv loops
        // by dropping the senders.
        self.cancel
            .store(true, std::sync::atomic::Ordering::Release);
        self.senders.clear();
        for (shard, handle) in self.workers.drain(..) {
            if let Ok(ws) = handle.join() {
                self.pool.checkin(shard, ws);
            }
        }
    }
}

impl Drop for ShardedRunner {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}
