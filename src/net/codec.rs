//! The MISP payload codec: lossless binary encodings of
//! [`SolveRequest`] and [`SolveOutcome`] (including the full per-algorithm
//! traces and every [`SolveError`] variant), plus the error-frame payload.
//!
//! Losslessness is load-bearing, not cosmetic: the serving layer's
//! determinism contract is checked through
//! [`SolveOutcome::fingerprint`], and the wire gate
//! (`BENCH_net.json`'s `wire_identical` flag) asserts that an outcome that
//! crossed the wire fingerprints byte-identical to one that never left the
//! process. Every field that participates in the fingerprint — seeds,
//! epochs, independent sets, cost totals, trace records down to their
//! `f64`s (encoded via [`f64::to_bits`], so NaNs and signed zeros survive)
//! and error details — therefore round-trips exactly.
//!
//! All multi-byte integers are little-endian. Variable-length sequences are
//! a `u32` element count followed by the elements; every count is
//! sanity-checked against the bytes actually remaining before any
//! allocation, so a lying count is a [`FrameError::Malformed`], not an OOM.

use super::frame::{encode_frame, FrameError, FrameKind};
use crate::serve::{
    Algorithm, DenyReason, Epoch, EpochPin, GraphId, SolveError, SolveOutcome, SolveRequest,
    SolveTrace, Target, TenantId,
};
use hypergraph::builder::hypergraph_from_edges;
use hypergraph::{Hypergraph, VertexId};
use mis_core::bl::BlConfig;
use mis_core::sbl::{SblConfig, TailChoice};
use mis_core::trace::{
    BlStageStats, BlTrace, KuwRoundStats, KuwTrace, SblRoundStats, SblTrace, TailAlgorithm,
};
use std::sync::Arc;

/// Cap on the vertex count of an ad-hoc instance shipped in a request
/// frame — the same bound the text reader enforces
/// (`hypergraph::io::MAX_TEXT_VERTICES`), for the same reason: a lying
/// header must not size an allocation.
pub const MAX_WIRE_VERTICES: u64 = 1 << 24;

// ---------------------------------------------------------------------------
// Little-endian primitives.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_vertices(out: &mut Vec<u8>, vs: &[VertexId]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Bounds-checked payload reader. Every accessor returns
/// [`FrameError::Malformed`] with the failing offset and field name instead
/// of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn fail<T>(&self, detail: &'static str) -> Result<T, FrameError> {
        Err(FrameError::Malformed {
            offset: self.pos,
            detail,
        })
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return self.fail(what);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, FrameError> {
        let v = self.u64(what)?;
        usize::try_from(v).or_else(|_| self.fail(what))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, FrameError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => self.fail(what),
        }
    }

    /// Reads a `u32` element count and sanity-checks it against the bytes
    /// remaining (`min_elem` = minimum encoded size of one element), so the
    /// following loop's `Vec::with_capacity` is bounded by real input.
    fn count(&mut self, min_elem: usize, what: &'static str) -> Result<usize, FrameError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem) > self.buf.len() - self.pos {
            return self.fail(what);
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<String, FrameError> {
        let n = self.count(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| self.fail(what))
    }

    fn vertices(&mut self, what: &'static str) -> Result<Vec<VertexId>, FrameError> {
        let n = self.count(4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32(what)?);
        }
        Ok(out)
    }

    /// Rejects trailing bytes: a frame carries exactly one message.
    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::TrailingBytes {
                consumed: self.pos,
                len: self.buf.len(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wire codes for the protocol enums — stable by promise, pinned by tests.

impl Algorithm {
    /// The stable wire code of this algorithm variant (`0`–`5`; the
    /// variant's configuration travels separately). Pinned by unit tests so
    /// reordering the enum cannot silently change the protocol.
    pub fn wire_code(&self) -> u8 {
        match self {
            Algorithm::Sbl(_) => 0,
            Algorithm::Bl(_) => 1,
            Algorithm::Kuw => 2,
            Algorithm::Greedy => 3,
            Algorithm::Permutation => 4,
            Algorithm::Linear => 5,
        }
    }
}

impl EpochPin {
    /// The stable wire code of this pin variant (`0` = latest, `1` = a
    /// pinned epoch, whose number travels separately). Pinned by unit
    /// tests.
    pub fn wire_code(&self) -> u8 {
        match self {
            EpochPin::Latest => 0,
            EpochPin::At(_) => 1,
        }
    }
}

impl SolveError {
    /// The stable numeric error code (the `2xx` block of the
    /// [protocol's error-code table](crate::net#error-codes)); doubles as
    /// the variant tag in the outcome encoding. The two
    /// [`AdmissionDenied`](SolveError::AdmissionDenied) reasons carry
    /// distinct codes so a wire client can tell a drained token bucket from
    /// a hit in-flight cap without decoding details.
    pub fn code(&self) -> u16 {
        match self {
            SolveError::NotLinear(_) => 201,
            SolveError::UnknownGraph(_) => 202,
            SolveError::UnknownEpoch { .. } => 203,
            SolveError::EpochEvicted { .. } => 204,
            SolveError::SnapshotUnavailable { .. } => 205,
            SolveError::InvalidQuery { .. } => 206,
            SolveError::AdmissionDenied {
                reason: DenyReason::QuotaExhausted,
                ..
            } => 207,
            SolveError::AdmissionDenied {
                reason: DenyReason::InFlightCap,
                ..
            } => 208,
        }
    }
}

fn trace_code(trace: &SolveTrace) -> u8 {
    match trace {
        SolveTrace::Sbl(_) => 0,
        SolveTrace::Bl(_) => 1,
        SolveTrace::Kuw(_) => 2,
        SolveTrace::Greedy => 3,
        SolveTrace::Permutation(_) => 4,
        SolveTrace::Linear(_) => 5,
        SolveTrace::Failed => 6,
    }
}

fn tail_choice_code(t: TailChoice) -> u8 {
    match t {
        TailChoice::Greedy => 0,
        TailChoice::Kuw => 1,
    }
}

fn tail_algorithm_code(t: TailAlgorithm) -> u8 {
    match t {
        TailAlgorithm::Greedy => 0,
        TailAlgorithm::Kuw => 1,
        TailAlgorithm::None => 2,
    }
}

// ---------------------------------------------------------------------------
// Graph ids, targets, configurations.

fn put_graph_id(out: &mut Vec<u8>, id: GraphId) {
    let (registry, index) = id.wire_parts();
    put_u64(out, registry);
    put_u64(out, index);
}

fn read_graph_id(r: &mut Reader<'_>) -> Result<GraphId, FrameError> {
    let registry = r.u64("graph id registry tag")?;
    let index = r.u64("graph id index")?;
    Ok(GraphId::from_wire_parts(registry, index))
}

fn put_hypergraph(out: &mut Vec<u8>, h: &Hypergraph) {
    put_u64(out, h.n_vertices() as u64);
    put_u32(out, h.n_edges() as u32);
    for e in h.edges() {
        put_vertices(out, e);
    }
}

fn read_hypergraph(r: &mut Reader<'_>) -> Result<Hypergraph, FrameError> {
    let n = r.u64("ad-hoc vertex count")?;
    if n > MAX_WIRE_VERTICES {
        return r.fail("ad-hoc vertex count exceeds the wire cap");
    }
    let n = n as usize;
    // An edge encodes to ≥ 8 bytes (count + one vertex), so the edge count
    // is bounded by the remaining payload before anything is allocated.
    let m = r.count(8, "ad-hoc edge count")?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let e = r.vertices("ad-hoc edge")?;
        if e.is_empty() {
            return r.fail("ad-hoc edge is empty");
        }
        if e.iter().any(|&v| v as usize >= n) {
            return r.fail("ad-hoc edge lists an out-of-range vertex");
        }
        edges.push(e);
    }
    Ok(hypergraph_from_edges(n, edges))
}

fn put_target(out: &mut Vec<u8>, target: &Target) {
    match target {
        Target::Adhoc(h) => {
            put_u8(out, 0);
            put_hypergraph(out, h);
        }
        Target::Resident(id) => {
            put_u8(out, 1);
            put_graph_id(out, *id);
        }
        Target::Induced { graph, vertices } => {
            put_u8(out, 2);
            put_graph_id(out, *graph);
            put_vertices(out, vertices);
        }
    }
}

fn read_target(r: &mut Reader<'_>) -> Result<Target, FrameError> {
    match r.u8("target tag")? {
        0 => Ok(Target::Adhoc(Arc::new(read_hypergraph(r)?))),
        1 => Ok(Target::Resident(read_graph_id(r)?)),
        2 => {
            let graph = read_graph_id(r)?;
            // Range/duplicate validation happens at solve time (the
            // `InvalidQuery` outcome); the codec only bounds the count.
            let vertices = Arc::new(r.vertices("induced vertex set")?);
            Ok(Target::Induced { graph, vertices })
        }
        _ => r.fail("target tag"),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_u64(out, v);
        }
    }
}

fn read_opt_u64(r: &mut Reader<'_>, what: &'static str) -> Result<Option<u64>, FrameError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(what)?)),
        _ => r.fail(what),
    }
}

fn put_bl_config(out: &mut Vec<u8>, c: &BlConfig) {
    put_u8(out, c.track_potentials as u8);
    put_usize(out, c.max_stages);
}

fn read_bl_config(r: &mut Reader<'_>) -> Result<BlConfig, FrameError> {
    Ok(BlConfig {
        track_potentials: r.bool("bl track_potentials")?,
        max_stages: r.usize("bl max_stages")?,
    })
}

fn put_sbl_config(out: &mut Vec<u8>, c: &SblConfig) {
    match c.p {
        None => put_u8(out, 0),
        Some(p) => {
            put_u8(out, 1);
            put_f64(out, p);
        }
    }
    put_opt_u64(out, c.dimension_cap.map(|v| v as u64));
    put_opt_u64(out, c.tail_threshold.map(|v| v as u64));
    put_usize(out, c.max_round_retries);
    put_u8(out, tail_choice_code(c.tail));
    put_bl_config(out, &c.bl);
    put_usize(out, c.max_rounds);
}

fn read_sbl_config(r: &mut Reader<'_>) -> Result<SblConfig, FrameError> {
    let p = match r.u8("sbl p flag")? {
        0 => None,
        1 => Some(r.f64("sbl p")?),
        _ => return r.fail("sbl p flag"),
    };
    let dimension_cap = read_opt_u64(r, "sbl dimension_cap")?.map(|v| v as usize);
    let tail_threshold = read_opt_u64(r, "sbl tail_threshold")?.map(|v| v as usize);
    let max_round_retries = r.usize("sbl max_round_retries")?;
    let tail = match r.u8("sbl tail choice")? {
        0 => TailChoice::Greedy,
        1 => TailChoice::Kuw,
        _ => return r.fail("sbl tail choice"),
    };
    let bl = read_bl_config(r)?;
    let max_rounds = r.usize("sbl max_rounds")?;
    Ok(SblConfig {
        p,
        dimension_cap,
        tail_threshold,
        max_round_retries,
        tail,
        bl,
        max_rounds,
    })
}

fn put_algorithm(out: &mut Vec<u8>, a: &Algorithm) {
    put_u8(out, a.wire_code());
    match a {
        Algorithm::Sbl(c) => put_sbl_config(out, c),
        Algorithm::Bl(c) => put_bl_config(out, c),
        Algorithm::Kuw | Algorithm::Greedy | Algorithm::Permutation | Algorithm::Linear => {}
    }
}

fn read_algorithm(r: &mut Reader<'_>) -> Result<Algorithm, FrameError> {
    match r.u8("algorithm code")? {
        0 => Ok(Algorithm::Sbl(read_sbl_config(r)?)),
        1 => Ok(Algorithm::Bl(read_bl_config(r)?)),
        2 => Ok(Algorithm::Kuw),
        3 => Ok(Algorithm::Greedy),
        4 => Ok(Algorithm::Permutation),
        5 => Ok(Algorithm::Linear),
        _ => r.fail("algorithm code"),
    }
}

fn put_pin(out: &mut Vec<u8>, pin: EpochPin) {
    put_u8(out, pin.wire_code());
    if let EpochPin::At(e) = pin {
        put_u64(out, e.0);
    }
}

fn read_pin(r: &mut Reader<'_>) -> Result<EpochPin, FrameError> {
    match r.u8("epoch pin tag")? {
        0 => Ok(EpochPin::Latest),
        1 => Ok(EpochPin::At(Epoch(r.u64("pinned epoch")?))),
        _ => r.fail("epoch pin tag"),
    }
}

// ---------------------------------------------------------------------------
// Requests.

/// Encodes one request frame: the MISP header plus the request payload,
/// carrying the caller-chosen `correlation` id the server echoes back in
/// the matching outcome (tickets are assigned server-side and global across
/// connections, so clients correlate by this id instead).
pub fn encode_request_frame(correlation: u64, request: &SolveRequest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, correlation);
    put_u64(&mut payload, request.tenant().0);
    put_target(&mut payload, request.target());
    put_algorithm(&mut payload, request.algorithm());
    put_u64(&mut payload, request.seed());
    put_pin(&mut payload, request.pin());
    let mut out = Vec::with_capacity(payload.len() + super::frame::HEADER_LEN);
    encode_frame(FrameKind::Request, &payload, &mut out);
    out
}

/// Decodes a request-frame payload into `(correlation, request)`. The
/// request is rebuilt through the [`SolveRequest`] builder — the same
/// single construction path library callers use.
pub fn decode_request_payload(payload: &[u8]) -> Result<(u64, SolveRequest), FrameError> {
    let mut r = Reader::new(payload);
    let correlation = r.u64("correlation id")?;
    let tenant = TenantId(r.u64("tenant id")?);
    let target = read_target(&mut r)?;
    let algorithm = read_algorithm(&mut r)?;
    let seed = r.u64("request seed")?;
    let pin = read_pin(&mut r)?;
    r.finish()?;
    let builder = match target {
        Target::Adhoc(h) => SolveRequest::adhoc(h),
        Target::Resident(id) => SolveRequest::for_graph(id),
        Target::Induced { graph, vertices } => SolveRequest::induced(graph, vertices),
    };
    let request = builder
        .algorithm(algorithm)
        .seed(seed)
        .pin(pin)
        .tenant(tenant)
        .build();
    Ok((correlation, request))
}

// ---------------------------------------------------------------------------
// Traces.

fn put_sbl_trace(out: &mut Vec<u8>, t: &SblTrace) {
    put_u32(out, t.rounds.len() as u32);
    for s in &t.rounds {
        put_usize(out, s.round);
        put_usize(out, s.n_alive);
        put_usize(out, s.m);
        put_f64(out, s.p);
        put_usize(out, s.sampled);
        put_usize(out, s.sample_dimension);
        put_usize(out, s.dimension_failures);
        put_usize(out, s.sample_edges);
        put_usize(out, s.added);
        put_usize(out, s.rejected);
        put_usize(out, s.edges_discarded);
        put_usize(out, s.bl_stages);
    }
    put_u8(out, tail_algorithm_code(t.tail));
    put_usize(out, t.tail_vertices);
    put_u8(out, t.direct_bl as u8);
}

fn read_sbl_trace(r: &mut Reader<'_>) -> Result<SblTrace, FrameError> {
    let n = r.count(96, "sbl round count")?;
    let mut rounds = Vec::with_capacity(n);
    for _ in 0..n {
        rounds.push(SblRoundStats {
            round: r.usize("sbl round")?,
            n_alive: r.usize("sbl n_alive")?,
            m: r.usize("sbl m")?,
            p: r.f64("sbl p")?,
            sampled: r.usize("sbl sampled")?,
            sample_dimension: r.usize("sbl sample_dimension")?,
            dimension_failures: r.usize("sbl dimension_failures")?,
            sample_edges: r.usize("sbl sample_edges")?,
            added: r.usize("sbl added")?,
            rejected: r.usize("sbl rejected")?,
            edges_discarded: r.usize("sbl edges_discarded")?,
            bl_stages: r.usize("sbl bl_stages")?,
        });
    }
    let tail = match r.u8("sbl tail algorithm")? {
        0 => TailAlgorithm::Greedy,
        1 => TailAlgorithm::Kuw,
        2 => TailAlgorithm::None,
        _ => return r.fail("sbl tail algorithm"),
    };
    let tail_vertices = r.usize("sbl tail_vertices")?;
    let direct_bl = r.bool("sbl direct_bl")?;
    Ok(SblTrace {
        rounds,
        tail,
        tail_vertices,
        direct_bl,
    })
}

fn put_bl_trace(out: &mut Vec<u8>, t: &BlTrace) {
    put_u32(out, t.stages.len() as u32);
    for s in &t.stages {
        put_usize(out, s.stage);
        put_usize(out, s.n_alive);
        put_usize(out, s.m);
        put_usize(out, s.dimension);
        put_f64(out, s.delta);
        put_f64(out, s.p);
        put_usize(out, s.marked);
        put_usize(out, s.unmarked);
        put_usize(out, s.added);
        put_usize(out, s.dominated_removed);
        put_usize(out, s.singletons_removed);
        put_u32(out, s.deltas_by_dimension.len() as u32);
        for &d in &s.deltas_by_dimension {
            put_f64(out, d);
        }
    }
}

fn read_bl_trace(r: &mut Reader<'_>) -> Result<BlTrace, FrameError> {
    let n = r.count(92, "bl stage count")?;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        let stage = r.usize("bl stage")?;
        let n_alive = r.usize("bl n_alive")?;
        let m = r.usize("bl m")?;
        let dimension = r.usize("bl dimension")?;
        let delta = r.f64("bl delta")?;
        let p = r.f64("bl p")?;
        let marked = r.usize("bl marked")?;
        let unmarked = r.usize("bl unmarked")?;
        let added = r.usize("bl added")?;
        let dominated_removed = r.usize("bl dominated_removed")?;
        let singletons_removed = r.usize("bl singletons_removed")?;
        let dn = r.count(8, "bl deltas_by_dimension count")?;
        let mut deltas_by_dimension = Vec::with_capacity(dn);
        for _ in 0..dn {
            deltas_by_dimension.push(r.f64("bl deltas_by_dimension")?);
        }
        stages.push(BlStageStats {
            stage,
            n_alive,
            m,
            dimension,
            delta,
            p,
            marked,
            unmarked,
            added,
            dominated_removed,
            singletons_removed,
            deltas_by_dimension,
        });
    }
    Ok(BlTrace { stages })
}

fn put_kuw_trace(out: &mut Vec<u8>, t: &KuwTrace) {
    put_u32(out, t.rounds.len() as u32);
    for s in &t.rounds {
        put_usize(out, s.round);
        put_usize(out, s.n_alive);
        put_usize(out, s.m);
        put_usize(out, s.candidates_tested);
        put_usize(out, s.batch_added);
        put_usize(out, s.excluded);
    }
}

fn read_kuw_trace(r: &mut Reader<'_>) -> Result<KuwTrace, FrameError> {
    let n = r.count(48, "kuw round count")?;
    let mut rounds = Vec::with_capacity(n);
    for _ in 0..n {
        rounds.push(KuwRoundStats {
            round: r.usize("kuw round")?,
            n_alive: r.usize("kuw n_alive")?,
            m: r.usize("kuw m")?,
            candidates_tested: r.usize("kuw candidates_tested")?,
            batch_added: r.usize("kuw batch_added")?,
            excluded: r.usize("kuw excluded")?,
        });
    }
    Ok(KuwTrace { rounds })
}

fn put_trace(out: &mut Vec<u8>, t: &SolveTrace) {
    put_u8(out, trace_code(t));
    match t {
        SolveTrace::Sbl(t) => put_sbl_trace(out, t),
        SolveTrace::Bl(t) | SolveTrace::Linear(t) => put_bl_trace(out, t),
        SolveTrace::Kuw(t) => put_kuw_trace(out, t),
        SolveTrace::Permutation(order) => put_vertices(out, order),
        SolveTrace::Greedy | SolveTrace::Failed => {}
    }
}

fn read_trace(r: &mut Reader<'_>) -> Result<SolveTrace, FrameError> {
    match r.u8("trace tag")? {
        0 => Ok(SolveTrace::Sbl(read_sbl_trace(r)?)),
        1 => Ok(SolveTrace::Bl(read_bl_trace(r)?)),
        2 => Ok(SolveTrace::Kuw(read_kuw_trace(r)?)),
        3 => Ok(SolveTrace::Greedy),
        4 => Ok(SolveTrace::Permutation(r.vertices("permutation order")?)),
        5 => Ok(SolveTrace::Linear(read_bl_trace(r)?)),
        6 => Ok(SolveTrace::Failed),
        _ => r.fail("trace tag"),
    }
}

// ---------------------------------------------------------------------------
// Solve errors (as outcome data).

fn put_solve_error(out: &mut Vec<u8>, e: &SolveError) {
    put_u16(out, e.code());
    match e {
        SolveError::NotLinear(mis_core::linear::LinearError::NotLinear { first, second }) => {
            put_usize(out, *first);
            put_usize(out, *second);
        }
        SolveError::UnknownGraph(id) => put_graph_id(out, *id),
        SolveError::UnknownEpoch { graph, epoch } => {
            put_graph_id(out, *graph);
            put_u64(out, epoch.0);
        }
        SolveError::EpochEvicted {
            graph,
            epoch,
            floor,
        } => {
            put_graph_id(out, *graph);
            put_u64(out, epoch.0);
            put_u64(out, floor.0);
        }
        SolveError::SnapshotUnavailable { graph, detail } => {
            put_graph_id(out, *graph);
            put_str(out, detail);
        }
        SolveError::InvalidQuery { vertex, duplicate } => {
            put_u32(out, *vertex);
            put_u8(out, *duplicate as u8);
        }
        SolveError::AdmissionDenied { tenant, .. } => {
            // The deny reason is the code itself (207/208).
            put_u64(out, tenant.0);
        }
    }
}

fn read_solve_error(r: &mut Reader<'_>) -> Result<SolveError, FrameError> {
    match r.u16("solve error code")? {
        201 => Ok(SolveError::NotLinear(
            mis_core::linear::LinearError::NotLinear {
                first: r.usize("not-linear first edge")?,
                second: r.usize("not-linear second edge")?,
            },
        )),
        202 => Ok(SolveError::UnknownGraph(read_graph_id(r)?)),
        203 => Ok(SolveError::UnknownEpoch {
            graph: read_graph_id(r)?,
            epoch: Epoch(r.u64("unknown epoch")?),
        }),
        204 => Ok(SolveError::EpochEvicted {
            graph: read_graph_id(r)?,
            epoch: Epoch(r.u64("evicted epoch")?),
            floor: Epoch(r.u64("retention floor epoch")?),
        }),
        205 => Ok(SolveError::SnapshotUnavailable {
            graph: read_graph_id(r)?,
            detail: r.str("snapshot-unavailable detail")?,
        }),
        206 => Ok(SolveError::InvalidQuery {
            vertex: r.u32("invalid query vertex")?,
            duplicate: r.bool("invalid query duplicate flag")?,
        }),
        code @ (207 | 208) => Ok(SolveError::AdmissionDenied {
            tenant: TenantId(r.u64("denied tenant")?),
            reason: if code == 207 {
                DenyReason::QuotaExhausted
            } else {
                DenyReason::InFlightCap
            },
        }),
        _ => r.fail("solve error code"),
    }
}

// ---------------------------------------------------------------------------
// Outcomes.

/// Encodes one outcome frame, echoing the request's `correlation` id.
pub fn encode_outcome_frame(correlation: u64, outcome: &SolveOutcome) -> Vec<u8> {
    let mut payload = Vec::with_capacity(128);
    put_u64(&mut payload, correlation);
    put_u64(&mut payload, outcome.ticket);
    put_u64(&mut payload, outcome.shard as u64);
    put_u64(&mut payload, outcome.tenant.0);
    put_u64(&mut payload, outcome.seed);
    put_opt_u64(&mut payload, outcome.epoch.map(|e| e.0));
    put_vertices(&mut payload, &outcome.independent_set);
    put_u64(&mut payload, outcome.work);
    put_u64(&mut payload, outcome.depth);
    put_u64(&mut payload, outcome.rounds);
    put_trace(&mut payload, &outcome.trace);
    match &outcome.error {
        None => put_u8(&mut payload, 0),
        Some(e) => {
            put_u8(&mut payload, 1);
            put_solve_error(&mut payload, e);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + super::frame::HEADER_LEN);
    encode_frame(FrameKind::Outcome, &payload, &mut out);
    out
}

/// Decodes an outcome-frame payload into `(correlation, outcome)`. The
/// outcome is lossless down to the trace `f64`s, so
/// [`SolveOutcome::fingerprint`] of the decode equals the fingerprint of
/// what the server encoded.
pub fn decode_outcome_payload(payload: &[u8]) -> Result<(u64, SolveOutcome), FrameError> {
    let mut r = Reader::new(payload);
    let correlation = r.u64("correlation id")?;
    let ticket = r.u64("outcome ticket")?;
    let shard = r.usize("outcome shard")?;
    let tenant = TenantId(r.u64("outcome tenant")?);
    let seed = r.u64("outcome seed")?;
    let epoch = read_opt_u64(&mut r, "outcome epoch")?.map(Epoch);
    let independent_set = r.vertices("independent set")?;
    let work = r.u64("outcome work")?;
    let depth = r.u64("outcome depth")?;
    let rounds = r.u64("outcome rounds")?;
    let trace = read_trace(&mut r)?;
    let error = match r.u8("outcome error flag")? {
        0 => None,
        1 => Some(read_solve_error(&mut r)?),
        _ => return r.fail("outcome error flag"),
    };
    r.finish()?;
    Ok((
        correlation,
        SolveOutcome {
            ticket,
            shard,
            tenant,
            seed,
            epoch,
            independent_set,
            work,
            depth,
            rounds,
            trace,
            error,
        },
    ))
}

// ---------------------------------------------------------------------------
// Error frames.

/// A protocol-level failure reported by the peer in an error frame: the
/// frame or payload was rejected before reaching the serving layer (frame
/// codes `1xx`), or the connection was refused. Carried by
/// [`Error::Remote`](crate::Error::Remote) on the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// The correlation id of the request the failure answers (`0` when the
    /// failure was not attributable to a decodable request).
    pub correlation: u64,
    /// The stable numeric error code (see the
    /// [error-code table](crate::net#error-codes)).
    pub code: u16,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peer reported error {} (correlation {}): {}",
            self.code, self.correlation, self.message
        )
    }
}

impl std::error::Error for RemoteError {}

/// Encodes one error frame.
pub fn encode_error_frame(correlation: u64, code: u16, message: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + message.len());
    put_u64(&mut payload, correlation);
    put_u16(&mut payload, code);
    put_str(&mut payload, message);
    let mut out = Vec::with_capacity(payload.len() + super::frame::HEADER_LEN);
    encode_frame(FrameKind::Error, &payload, &mut out);
    out
}

/// Decodes an error-frame payload.
pub fn decode_error_payload(payload: &[u8]) -> Result<RemoteError, FrameError> {
    let mut r = Reader::new(payload);
    let correlation = r.u64("correlation id")?;
    let code = r.u16("error code")?;
    let message = r.str("error message")?;
    r.finish()?;
    Ok(RemoteError {
        correlation,
        code,
        message,
    })
}
