//! The MISP frame layer: the length-prefixed, checksummed envelope every
//! protocol message travels in (see the [module docs](super) for the full
//! wire specification).
//!
//! This layer is deliberately hostile-input-first, following the HGCSR /
//! HGWAL policy: truncation at every byte offset, arbitrary bit flips and
//! lying headers must land in a structured [`FrameError`] — never a panic,
//! never an over-allocation driven by attacker-controlled lengths.

use std::io::Read;

/// The four magic bytes every frame starts with: `"MISP"`.
pub const MAGIC: [u8; 4] = *b"MISP";

/// The protocol version this build speaks (`MISP 1`). The version rides in
/// every frame header; a peer receiving a version it does not support
/// answers with an error frame carrying
/// [`FrameError::UnsupportedVersion`]'s code — that error frame (whose
/// layout is frozen across all future versions) *is* the negotiation
/// mechanism.
pub const VERSION: u16 = 1;

/// Bytes in a frame header: magic (4) + version (2) + kind (1) +
/// reserved (1) + payload length (4) + FNV-1a checksum (8).
pub const HEADER_LEN: usize = 20;

/// Default cap on a frame's payload length (64 MiB). Frames claiming more
/// are rejected as [`FrameError::Oversize`] *before* any allocation — a
/// lying length field cannot make a peer reserve memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 26;

/// The FNV-1a 64-bit hash of a byte slice — the per-frame checksum (offset
/// basis `0xcbf29ce484222325`, prime `0x100000001b3`; the same function the
/// HGCSR snapshot format uses).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What a frame carries, from the header's kind byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`SolveRequest`](crate::serve::SolveRequest) (client → server).
    Request,
    /// A [`SolveOutcome`](crate::serve::SolveOutcome) (server → client).
    Outcome,
    /// A protocol-level failure report (server → client): the peer's frame
    /// or payload was rejected before it reached the serving layer.
    Error,
}

impl FrameKind {
    /// The stable kind byte (`1`/`2`/`3` — pinned by unit tests; `0` is
    /// permanently invalid so an all-zero header can never parse).
    pub fn wire_code(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Outcome => 2,
            FrameKind::Error => 3,
        }
    }

    /// Inverse of [`wire_code`](Self::wire_code).
    pub fn from_wire_code(code: u8) -> Result<Self, FrameError> {
        match code {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Outcome),
            3 => Ok(FrameKind::Error),
            found => Err(FrameError::UnknownKind { found }),
        }
    }
}

/// A structured rejection from the frame or payload codec. Every hostile
/// input lands here; the codec never panics and never allocates from an
/// unvalidated length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does (`needed` counts the whole
    /// frame: header + declared payload).
    Truncated {
        /// Total bytes the frame requires.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not `"MISP"`.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The header names a protocol version this build does not speak.
    UnsupportedVersion {
        /// The version the peer sent.
        found: u16,
        /// The version this build supports ([`VERSION`]).
        supported: u16,
    },
    /// The kind byte is none of the defined frame kinds.
    UnknownKind {
        /// The byte found.
        found: u8,
    },
    /// The reserved header byte was not zero (reserved for future use; a
    /// `MISP 1` peer must send zero).
    BadReserved {
        /// The byte found.
        found: u8,
    },
    /// The declared payload length exceeds the receiver's cap.
    Oversize {
        /// The declared payload length.
        len: u32,
        /// The receiver's cap.
        cap: u32,
    },
    /// The payload does not hash to the checksum the header carries.
    ChecksumMismatch {
        /// The checksum stored in the header.
        stored: u64,
        /// The checksum computed over the received payload.
        computed: u64,
    },
    /// A payload field failed to decode (bad tag byte, lying element count,
    /// invalid UTF-8, out-of-range vertex id, …).
    Malformed {
        /// Byte offset *within the payload* where decoding failed.
        offset: usize,
        /// Which field rejected the bytes.
        detail: &'static str,
    },
    /// The payload decoded cleanly but was longer than its content — a
    /// frame must contain exactly one message.
    TrailingBytes {
        /// Bytes the message actually consumed.
        consumed: usize,
        /// The payload length.
        len: usize,
    },
}

impl FrameError {
    /// The stable numeric error code (the `1xx` block of the
    /// [protocol's error-code table](crate::net#error-codes)) — pinned by
    /// unit tests as a compatibility promise.
    pub fn code(&self) -> u16 {
        match self {
            FrameError::Truncated { .. } => 101,
            FrameError::BadMagic { .. } => 102,
            FrameError::UnsupportedVersion { .. } => 103,
            FrameError::UnknownKind { .. } => 104,
            FrameError::BadReserved { .. } => 105,
            FrameError::Oversize { .. } => 106,
            FrameError::ChecksumMismatch { .. } => 107,
            FrameError::Malformed { .. } => 108,
            FrameError::TrailingBytes { .. } => 109,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"MISP\")")
            }
            FrameError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this peer speaks {supported})"
                )
            }
            FrameError::UnknownKind { found } => write!(f, "unknown frame kind {found}"),
            FrameError::BadReserved { found } => {
                write!(f, "reserved header byte is {found} (must be 0)")
            }
            FrameError::Oversize { len, cap } => {
                write!(f, "payload length {len} exceeds the {cap}-byte cap")
            }
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: header says {stored:#018x}, payload hashes to \
                 {computed:#018x}"
            ),
            FrameError::Malformed { offset, detail } => {
                write!(f, "malformed payload at byte {offset}: {detail}")
            }
            FrameError::TrailingBytes { consumed, len } => write!(
                f,
                "payload carries {len} bytes but the message ends at {consumed}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded frame borrowing its payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// What the payload carries.
    pub kind: FrameKind,
    /// The checksum-verified payload bytes.
    pub payload: &'a [u8],
}

/// Appends one frame (header + payload) to `out`.
pub fn encode_frame(kind: FrameKind, payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= u32::MAX as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.wire_code());
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the frame at the start of `buf`, returning it and the number of
/// bytes it occupied. Every validation failure is a structured
/// [`FrameError`]; nothing in the header is trusted before it is checked
/// (in particular, the length field is bounds-checked against both
/// `max_payload` and the buffer before any payload byte is touched).
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<(Frame<'_>, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    let magic = [buf[0], buf[1], buf[2], buf[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = FrameKind::from_wire_code(buf[6])?;
    if buf[7] != 0 {
        return Err(FrameError::BadReserved { found: buf[7] });
    }
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > max_payload {
        return Err(FrameError::Oversize {
            len,
            cap: max_payload,
        });
    }
    let needed = HEADER_LEN + len as usize;
    if buf.len() < needed {
        return Err(FrameError::Truncated {
            needed,
            have: buf.len(),
        });
    }
    let stored = u64::from_le_bytes([
        buf[12], buf[13], buf[14], buf[15], buf[16], buf[17], buf[18], buf[19],
    ]);
    let payload = &buf[HEADER_LEN..needed];
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(FrameError::ChecksumMismatch { stored, computed });
    }
    Ok((Frame { kind, payload }, needed))
}

/// What [`read_frame`] pulled off a stream.
#[derive(Debug)]
pub(crate) enum ReadFrame {
    /// One verified frame.
    Frame(FrameKind, Vec<u8>),
    /// The peer closed the stream cleanly, at a frame boundary.
    Eof,
    /// `stop()` turned true while waiting (only possible on streams with a
    /// read timeout configured).
    Stopped,
}

/// Reads exactly `buf.len()` bytes, retrying timeouts but polling `stop`
/// on each one. `start_of_frame` distinguishes a clean close (EOF before
/// any byte of a new frame) from a mid-frame truncation.
fn read_full(
    stream: &mut impl Read,
    buf: &mut [u8],
    start_of_frame: bool,
    needed: usize,
    stop: &impl Fn() -> bool,
) -> Result<Option<usize>, crate::Error> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if start_of_frame && got == 0 {
                    return Ok(None); // clean EOF at a frame boundary
                }
                return Err(crate::Error::Frame(FrameError::Truncated {
                    needed,
                    have: needed - buf.len() + got,
                }));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop() {
                    return Ok(Some(got));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(crate::Error::Io(e)),
        }
    }
    Ok(Some(got))
}

/// Reads one frame from a stream: header first, then the declared payload
/// (already bounds-checked against `max_payload`), then the checksum
/// verification. Timeouts poll `stop` so a server reader can notice
/// shutdown; a stream without a read timeout never observes `Stopped`.
pub(crate) fn read_frame(
    stream: &mut impl Read,
    max_payload: u32,
    stop: &impl Fn() -> bool,
) -> Result<ReadFrame, crate::Error> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(stream, &mut header, true, HEADER_LEN, stop)? {
        None => return Ok(ReadFrame::Eof),
        Some(got) if got < HEADER_LEN => return Ok(ReadFrame::Stopped),
        Some(_) => {}
    }
    // Validate the header alone by offering the frame decoder just the
    // header bytes: every check except the final truncation/checksum pair
    // runs before the payload is read (or allocated).
    match decode_frame(&header, max_payload) {
        Err(FrameError::Truncated { .. }) => {} // header fine, payload pending
        Err(e) => return Err(crate::Error::Frame(e)),
        Ok(_) => {} // zero-length payload: already complete
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let needed = HEADER_LEN + len;
    let mut payload = vec![0u8; len];
    match read_full(stream, &mut payload, false, needed, stop)? {
        Some(got) if got < len => return Ok(ReadFrame::Stopped),
        _ => {}
    }
    let stored = u64::from_le_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]);
    let computed = fnv1a(&payload);
    if stored != computed {
        return Err(crate::Error::Frame(FrameError::ChecksumMismatch {
            stored,
            computed,
        }));
    }
    let kind = FrameKind::from_wire_code(header[6]).expect("kind validated by decode_frame");
    Ok(ReadFrame::Frame(kind, payload))
}
