//! The blocking `MISP 1` client connector.

use super::codec::{decode_error_payload, decode_outcome_payload, encode_request_frame};
use super::frame::{self, FrameKind, ReadFrame, DEFAULT_MAX_PAYLOAD};
use crate::serve::{SolveOutcome, SolveRequest};
use crate::Error;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// One decoded response: which request it answers (by the correlation id
/// [`Client::submit`] returned) and the outcome itself — including
/// solve-time failures, which arrive as
/// [`outcome.error`](SolveOutcome::error) data exactly as the library
/// reports them. Responses arrive in *completion* order, not submission
/// order; pipeline requests and match replies by correlation.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The correlation id of the request this answers.
    pub correlation: u64,
    /// The outcome, byte-identical (by
    /// [`fingerprint`](SolveOutcome::fingerprint)) to what an in-process
    /// submission of the same request would have produced.
    pub outcome: SolveOutcome,
}

/// A blocking `MISP 1` connection to a [`Server`](super::Server).
///
/// [`submit`](Self::submit) and [`recv`](Self::recv) may be freely
/// interleaved to pipeline; for a sender thread and a receiver thread, use
/// [`split`](Self::split).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_payload: u32,
    next_correlation: u64,
}

impl Client {
    /// Connects with the default frame-payload cap
    /// ([`DEFAULT_MAX_PAYLOAD`]).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, DEFAULT_MAX_PAYLOAD)
    }

    /// Connects with an explicit cap on accepted response payloads.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        max_frame_payload: u32,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame_payload,
            next_correlation: 0,
        })
    }

    /// Encodes and sends one request frame, returning the correlation id
    /// (sequential from 0 per connection) its [`Reply`] will carry.
    pub fn submit(&mut self, request: &SolveRequest) -> Result<u64, Error> {
        let correlation = self.next_correlation;
        self.next_correlation += 1;
        let bytes = encode_request_frame(correlation, request);
        self.stream.write_all(&bytes)?;
        Ok(correlation)
    }

    /// Blocks for the next response frame. Outcome frames decode to a
    /// [`Reply`]; error frames (the server rejected a frame this side
    /// sent) surface as [`Error::Remote`].
    pub fn recv(&mut self) -> Result<Reply, Error> {
        recv_reply(&mut self.stream, self.max_frame_payload)
    }

    /// Splits the connection into an independently owned sender and
    /// receiver (e.g. a submission thread and a collection thread), via
    /// [`TcpStream::try_clone`].
    pub fn split(self) -> std::io::Result<(ClientSender, ClientReceiver)> {
        let read_half = self.stream.try_clone()?;
        Ok((
            ClientSender {
                stream: self.stream,
                next_correlation: self.next_correlation,
            },
            ClientReceiver {
                stream: read_half,
                max_frame_payload: self.max_frame_payload,
            },
        ))
    }
}

/// The sending half of a [`split`](Client::split) connection.
#[derive(Debug)]
pub struct ClientSender {
    stream: TcpStream,
    next_correlation: u64,
}

impl ClientSender {
    /// See [`Client::submit`].
    pub fn submit(&mut self, request: &SolveRequest) -> Result<u64, Error> {
        let correlation = self.next_correlation;
        self.next_correlation += 1;
        let bytes = encode_request_frame(correlation, request);
        self.stream.write_all(&bytes)?;
        Ok(correlation)
    }
}

/// The receiving half of a [`split`](Client::split) connection.
#[derive(Debug)]
pub struct ClientReceiver {
    stream: TcpStream,
    max_frame_payload: u32,
}

impl ClientReceiver {
    /// See [`Client::recv`].
    pub fn recv(&mut self) -> Result<Reply, Error> {
        recv_reply(&mut self.stream, self.max_frame_payload)
    }
}

fn recv_reply(stream: &mut TcpStream, max_frame_payload: u32) -> Result<Reply, Error> {
    match frame::read_frame(stream, max_frame_payload, &|| false)? {
        ReadFrame::Frame(FrameKind::Outcome, payload) => {
            let (correlation, outcome) = decode_outcome_payload(&payload)?;
            Ok(Reply {
                correlation,
                outcome,
            })
        }
        ReadFrame::Frame(FrameKind::Error, payload) => {
            Err(Error::Remote(decode_error_payload(&payload)?))
        }
        ReadFrame::Frame(FrameKind::Request, _) => {
            Err(Error::Frame(frame::FrameError::Malformed {
                offset: 0,
                detail: "request frame on a client connection",
            }))
        }
        ReadFrame::Eof => Err(Error::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ))),
        // Unreachable: the stop closure above is constantly false, and
        // client streams configure no read timeout.
        ReadFrame::Stopped => Err(Error::Io(std::io::Error::from(
            std::io::ErrorKind::WouldBlock,
        ))),
    }
}
