//! The socket front-end: a thread-per-connection TCP server feeding the
//! sharded runner.
//!
//! # Architecture
//!
//! No async runtime — the workspace vendors none, and none is needed. The
//! server is a small set of plain threads over the same
//! [`pram::pool::spawn_worker`] seam the shards use:
//!
//! * one **acceptor** polls a nonblocking [`TcpListener`] and spawns a
//!   reader/writer pair per connection;
//! * each connection's **reader** decodes request frames and forwards them
//!   to the dispatcher (a codec rejection is answered with an error frame
//!   and closes the connection — a byte stream cannot resynchronise past a
//!   framing error);
//! * each connection's **writer** owns the response half of the socket and
//!   encodes outcome/error frames from its queue, so a slow connection
//!   backpressures only itself;
//! * one **dispatcher** owns the
//!   [`ShardedRunner`] — the only thread that
//!   touches it. It interleaves submissions with
//!   [`try_collect_one`](crate::serve::ShardedRunner::try_collect_one)
//!   polls, routing each completed outcome to the writer of the connection
//!   whose ticket it answers. Requests from every connection funnel through
//!   one submission sequence, so each request's outcome is exactly what the
//!   library would have produced — per-request determinism holds whatever
//!   the cross-connection interleaving.
//!
//! [`Server::shutdown`] is graceful: in-flight (already submitted)
//! requests complete and their responses are flushed; bytes not yet decoded
//! off a socket are dropped with the connection.

use super::codec::{encode_error_frame, encode_outcome_frame};
use super::frame::{self, FrameKind, ReadFrame, DEFAULT_MAX_PAYLOAD};
use crate::serve::{
    ConnectionStats, ResidentRegistry, ServeConfig, ServeStats, ShardedRunner, SolveOutcome,
    SolveRequest,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long blocking socket/queue operations wait before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(10);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Configuration of the underlying
    /// [`ShardedRunner`] (shard count, queue
    /// depth, routing, admission).
    pub serve: ServeConfig,
    /// Cap on accepted frame payload lengths; frames claiming more are
    /// rejected before any allocation
    /// ([`FrameError::Oversize`](super::FrameError::Oversize)). Defaults to
    /// [`DEFAULT_MAX_PAYLOAD`].
    pub max_frame_payload: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            serve: ServeConfig::default(),
            max_frame_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Per-connection atomic counters (shared between the connection's reader,
/// its writer, and [`Server::shutdown`]'s final report).
#[derive(Default)]
struct ConnCounters {
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
}

/// What flows from connection threads to the dispatcher.
enum Event {
    Connect {
        conn: u64,
        writer: mpsc::Sender<WriterMsg>,
    },
    Submit {
        conn: u64,
        correlation: u64,
        request: SolveRequest,
    },
    Disconnect {
        conn: u64,
    },
}

/// What flows from the dispatcher (or a reader, for codec rejections) to a
/// connection's writer.
enum WriterMsg {
    Outcome {
        correlation: u64,
        outcome: Box<SolveOutcome>,
    },
    Error {
        correlation: u64,
        code: u16,
        message: String,
    },
}

/// The `MISP 1` socket front-end over a [`ShardedRunner`]. See the
/// [module docs](self) for the thread architecture and the
/// [`net` docs](crate::net) for the protocol.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    events: Option<mpsc::Sender<Event>>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<ServeStats>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    writers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: Arc<Mutex<BTreeMap<u64, Arc<ConnCounters>>>>,
}

impl Server {
    /// Binds a listener, spawns the runner's worker shards and the
    /// front-end threads, and starts accepting connections. Bind to port 0
    /// for an ephemeral loopback port ([`local_addr`](Self::local_addr)
    /// reports the assignment).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ResidentRegistry>,
        config: &NetConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (events_tx, events_rx) = mpsc::channel::<Event>();
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let writers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let counters: Arc<Mutex<BTreeMap<u64, Arc<ConnCounters>>>> = Arc::default();

        let runner = ShardedRunner::new(registry, &config.serve);
        let dispatcher = pram::pool::spawn_worker("net-dispatcher".into(), None, move || {
            dispatch(runner, events_rx)
        });

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let events = events_tx.clone();
            let readers = Arc::clone(&readers);
            let writers = Arc::clone(&writers);
            let counters = Arc::clone(&counters);
            let max_payload = config.max_frame_payload;
            pram::pool::spawn_worker("net-acceptor".into(), None, move || {
                let mut next_conn = 0u64;
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let conn = next_conn;
                            next_conn += 1;
                            if let Err(e) = spawn_connection(
                                conn,
                                stream,
                                max_payload,
                                &shutdown,
                                &events,
                                &readers,
                                &writers,
                                &counters,
                            ) {
                                // Socket configuration failed (peer already
                                // gone, typically): drop the connection.
                                let _ = e;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
        };

        Ok(Server {
            addr,
            shutdown,
            events: Some(events_tx),
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
            readers,
            writers,
            counters,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, completes every already
    /// submitted request, flushes the responses, joins all threads, and
    /// returns the final [`ServeStats`] with
    /// [`connections`](ServeStats::connections) filled in (one entry per
    /// connection ever accepted, including already-closed ones).
    pub fn shutdown(mut self) -> ServeStats {
        self.stop().expect("net: dispatcher thread panicked")
    }

    fn stop(&mut self) -> Option<ServeStats> {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.readers.lock().expect("reader list").drain(..) {
            let _ = h.join();
        }
        // All reader-held event senders are gone; dropping ours ends the
        // dispatcher's event loop, which drains outstanding outcomes to the
        // writers and then drops their queues.
        self.events.take();
        let stats = self.dispatcher.take().map(|h| {
            let mut stats = h.join().expect("net: dispatcher thread panicked");
            stats.connections = self
                .counters
                .lock()
                .expect("connection counters")
                .iter()
                .map(|(&connection, c)| ConnectionStats {
                    connection,
                    requests: c.requests.load(Ordering::Relaxed),
                    responses: c.responses.load(Ordering::Relaxed),
                    protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
                })
                .collect();
            stats
        });
        for h in self.writers.lock().expect("writer list").drain(..) {
            let _ = h.join();
        }
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.dispatcher.is_some() {
            let _ = self.stop();
        }
    }
}

/// Spawns one connection's reader and writer threads.
#[allow(clippy::too_many_arguments)]
fn spawn_connection(
    conn: u64,
    stream: TcpStream,
    max_payload: u32,
    shutdown: &Arc<AtomicBool>,
    events: &mpsc::Sender<Event>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    writers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    counters: &Arc<Mutex<BTreeMap<u64, Arc<ConnCounters>>>>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // The read timeout is what lets the reader poll the shutdown flag.
    stream.set_read_timeout(Some(POLL))?;
    let write_half = stream.try_clone()?;
    let conn_counters = Arc::new(ConnCounters::default());
    counters
        .lock()
        .expect("connection counters")
        .insert(conn, Arc::clone(&conn_counters));

    let (writer_tx, writer_rx) = mpsc::channel::<WriterMsg>();
    // Registration precedes the reader spawn, so the dispatcher always
    // learns of the connection before its first request.
    let _ = events.send(Event::Connect {
        conn,
        writer: writer_tx.clone(),
    });

    let writer = {
        let counters = Arc::clone(&conn_counters);
        pram::pool::spawn_worker(format!("net-conn-{conn}-writer"), None, move || {
            write_loop(write_half, writer_rx, &counters)
        })
    };
    writers.lock().expect("writer list").push(writer);

    let reader = {
        let shutdown = Arc::clone(shutdown);
        let events = events.clone();
        let counters = Arc::clone(&conn_counters);
        pram::pool::spawn_worker(format!("net-conn-{conn}-reader"), None, move || {
            read_loop(
                conn,
                stream,
                max_payload,
                &shutdown,
                &events,
                writer_tx,
                &counters,
            );
            let _ = events.send(Event::Disconnect { conn });
        })
    };
    readers.lock().expect("reader list").push(reader);
    Ok(())
}

/// One connection's request pump: frames off the socket, decoded requests
/// into the dispatcher's queue. Returns when the peer closes, the codec
/// rejects a frame, or shutdown is signalled.
fn read_loop(
    conn: u64,
    mut stream: TcpStream,
    max_payload: u32,
    shutdown: &AtomicBool,
    events: &mpsc::Sender<Event>,
    writer: mpsc::Sender<WriterMsg>,
    counters: &ConnCounters,
) {
    let stop = || shutdown.load(Ordering::Acquire);
    loop {
        match frame::read_frame(&mut stream, max_payload, &stop) {
            Ok(ReadFrame::Frame(FrameKind::Request, payload)) => {
                match super::codec::decode_request_payload(&payload) {
                    Ok((correlation, request)) => {
                        counters.requests.fetch_add(1, Ordering::Relaxed);
                        if events
                            .send(Event::Submit {
                                conn,
                                correlation,
                                request,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(e) => {
                        counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = writer.send(WriterMsg::Error {
                            correlation: 0,
                            code: e.code(),
                            message: e.to_string(),
                        });
                        return;
                    }
                }
            }
            Ok(ReadFrame::Frame(_, _)) => {
                // Outcome/error frames only flow server → client.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = writer.send(WriterMsg::Error {
                    correlation: 0,
                    code: 108,
                    message: "unexpected frame kind on a server connection".into(),
                });
                return;
            }
            Ok(ReadFrame::Eof) | Ok(ReadFrame::Stopped) => return,
            Err(crate::Error::Frame(e)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = writer.send(WriterMsg::Error {
                    correlation: 0,
                    code: e.code(),
                    message: e.to_string(),
                });
                return;
            }
            Err(_) => return, // socket error: the connection is gone
        }
    }
}

/// One connection's response pump: encodes and writes every message queued
/// for this connection, in queue order. Exits when the queue closes (the
/// reader and the dispatcher have both dropped their senders) or the
/// socket dies.
fn write_loop(mut stream: TcpStream, queue: mpsc::Receiver<WriterMsg>, counters: &ConnCounters) {
    while let Ok(msg) = queue.recv() {
        let bytes = match msg {
            WriterMsg::Outcome {
                correlation,
                outcome,
            } => encode_outcome_frame(correlation, &outcome),
            WriterMsg::Error {
                correlation,
                code,
                message,
            } => encode_error_frame(correlation, code, &message),
        };
        if stream.write_all(&bytes).is_err() {
            return; // peer gone; keep draining is pointless
        }
        counters.responses.fetch_add(1, Ordering::Relaxed);
    }
    let _ = stream.flush();
}

/// The dispatcher loop: the single owner of the [`ShardedRunner`],
/// interleaving submissions with completion polls so responses stream back
/// while later requests are still arriving. Returns the runner's final
/// stats (connection counters are attached by [`Server::shutdown`]).
fn dispatch(mut runner: ShardedRunner, events: mpsc::Receiver<Event>) -> ServeStats {
    let mut writers: BTreeMap<u64, mpsc::Sender<WriterMsg>> = BTreeMap::new();
    // ticket → (connection, correlation): which socket each outcome goes
    // back out on, and as which client-side request.
    let mut routes: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    loop {
        let timeout = if runner.outstanding() > 0 {
            Duration::from_millis(1)
        } else {
            POLL
        };
        match events.recv_timeout(timeout) {
            Ok(Event::Connect { conn, writer }) => {
                writers.insert(conn, writer);
            }
            Ok(Event::Submit {
                conn,
                correlation,
                request,
            }) => {
                let ticket = runner.submit(request);
                routes.insert(ticket, (conn, correlation));
            }
            Ok(Event::Disconnect { conn }) => {
                // Outcomes still in flight for this connection will find no
                // writer and be dropped on delivery.
                writers.remove(&conn);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        while let Some(out) = runner.try_collect_one(Duration::ZERO) {
            deliver(&writers, &mut routes, out);
        }
    }
    // Shutdown drain: every submitted request still completes and is
    // flushed to its connection's writer before the queues close.
    while runner.outstanding() > 0 {
        if let Some(out) = runner.try_collect_one(Duration::from_millis(50)) {
            deliver(&writers, &mut routes, out);
        }
    }
    runner.stats()
}

fn deliver(
    writers: &BTreeMap<u64, mpsc::Sender<WriterMsg>>,
    routes: &mut BTreeMap<u64, (u64, u64)>,
    outcome: SolveOutcome,
) {
    if let Some((conn, correlation)) = routes.remove(&outcome.ticket) {
        if let Some(writer) = writers.get(&conn) {
            let _ = writer.send(WriterMsg::Outcome {
                correlation,
                outcome: Box::new(outcome),
            });
        }
    }
}
