//! `MISP 1` — the wire protocol and socket front-end of the serving layer.
//!
//! The [`serve`](crate::serve) subsystem is a library; production traffic
//! arrives over a wire. This module puts a small framed binary protocol in
//! front of the existing machinery: a [`Server`] accepts TCP connections,
//! decodes [`SolveRequest`](crate::serve::SolveRequest) frames straight
//! into [`ShardedRunner::submit`](crate::serve::ShardedRunner::submit), and
//! streams each [`SolveOutcome`](crate::serve::SolveOutcome) back on the
//! connection that asked for it as the shards finish — admission denials
//! included, flowing as ordinary response frames (rejection as data, the
//! same contract the library has). A [`Client`] is the matching blocking
//! connector. No async runtime is involved anywhere: the front-end is
//! thread-per-connection over the same [`pram::pool`] worker seam the
//! shards use, with one dispatcher thread owning the runner.
//!
//! Determinism survives the trip: the codec is lossless down to the trace
//! `f64`s, so an outcome's
//! [`fingerprint`](crate::serve::SolveOutcome::fingerprint) is identical
//! whether the request was submitted in-process or travelled the wire —
//! that identity is asserted per-request by `tests/net.rs` and gated in CI
//! by `BENCH_net.json`'s `wire_identical` flag.
//!
//! # Frame layout
//!
//! Every message travels in one frame; all integers are little-endian:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `"MISP"` |
//! | 4      | 2    | protocol version (`u16`, currently [`1`](frame::VERSION)) |
//! | 6      | 1    | frame kind: `1` request, `2` outcome, `3` error |
//! | 7      | 1    | reserved (must be `0`) |
//! | 8      | 4    | payload length (`u32`) |
//! | 12     | 8    | FNV-1a 64-bit checksum of the payload |
//! | 20     | …    | payload |
//!
//! Payload encodings are documented on [`codec`]. Request and outcome
//! payloads open with a client-chosen **correlation id** (`u64`): server
//! tickets are global across connections, so responses are matched to
//! requests by this id instead. Outcomes arrive in *completion* order, not
//! submission order — per-connection pipelining is the point.
//!
//! # Hostile input
//!
//! The codec follows the HGCSR/HGWAL policy: truncation at every byte
//! offset, arbitrary bit flips and lying headers land in a structured
//! [`FrameError`], never a panic, and no attacker-controlled length sizes
//! an allocation before it is bounds-checked against the bytes actually
//! present (`tests/net.rs` sweeps all three families). A server answers a
//! rejected frame with an error frame and closes the connection — a byte
//! stream cannot be resynchronised past a framing error.
//!
//! # Version negotiation
//!
//! The version rides in every frame header. A peer receiving a version it
//! does not speak answers with an error frame carrying code `103`
//! ([`FrameError::UnsupportedVersion`]) and its own supported version in
//! the message, then closes; the error-frame layout itself is frozen
//! across all future versions, so any `MISP n` client can decode the
//! rejection and retry with a lower version. `MISP 1` peers simply fail
//! the connection.
//!
//! # Error codes
//!
//! Stable numeric codes are a compatibility promise shared with
//! [`crate::Error`] (see its module docs for the block layout): codes are
//! never renumbered, only appended. The wire uses them in two places —
//! error frames carry a `u16` code, and an encoded
//! [`SolveError`](crate::serve::SolveError) uses its code as the variant
//! tag:
//!
//! | code | meaning |
//! |------|---------|
//! | 101  | truncated frame |
//! | 102  | bad magic |
//! | 103  | unsupported version |
//! | 104  | unknown frame kind |
//! | 105  | nonzero reserved byte |
//! | 106  | payload length over cap |
//! | 107  | checksum mismatch |
//! | 108  | malformed payload field |
//! | 109  | trailing bytes after message |
//! | 201  | not a linear hypergraph |
//! | 202  | unknown graph |
//! | 203  | unknown epoch |
//! | 204  | epoch evicted by retention |
//! | 205  | spilled snapshot unavailable |
//! | 206  | invalid induced query |
//! | 207  | admission denied: token bucket exhausted |
//! | 208  | admission denied: in-flight cap |
//!
//! # Example
//!
//! ```
//! use hypergraph_mis::net::{Client, NetConfig, Server};
//! use hypergraph_mis::prelude::*;
//! # use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let mut registry = ResidentRegistry::new();
//! let id = registry.register(generate::paper_regime(&mut rng, 200, 30, 6));
//!
//! let server = Server::bind("127.0.0.1:0", Arc::new(registry), &NetConfig::default())
//!     .expect("bind loopback");
//! let mut client = Client::connect(server.local_addr()).expect("connect");
//!
//! let correlation = client
//!     .submit(&SolveRequest::for_graph(id).seed(7).build())
//!     .expect("send request");
//! let reply = client.recv().expect("receive outcome");
//! assert_eq!(reply.correlation, correlation);
//! assert!(reply.outcome.error.is_none());
//!
//! drop(client);
//! let stats = server.shutdown();
//! assert_eq!(stats.delivered, 1);
//! ```

pub mod client;
pub mod codec;
pub mod frame;
pub mod server;

pub use client::{Client, ClientReceiver, ClientSender, Reply};
pub use codec::RemoteError;
pub use frame::{FrameError, FrameKind};
pub use server::{NetConfig, Server};
