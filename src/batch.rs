//! [`BatchRunner`]: amortize one scratch [`Workspace`] across a stream of
//! MIS solves.
//!
//! Every algorithm entry point in [`mis_core`] comes in two flavours: the
//! plain function (`sbl_mis`, `bl_mis`, …), which owns a fresh workspace per
//! call — the *cold* path — and the `*_in` variant taking a caller-owned
//! [`Workspace`], which reuses flag buffers, index lists and whole parked
//! engines across calls — the *amortized* path. A [`BatchRunner`] is the
//! thin stateful wrapper that owns that workspace for you:
//!
//! ```
//! use hypergraph_mis::batch::BatchRunner;
//! use hypergraph_mis::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut runner = BatchRunner::new();
//! for seed in 0..4u64 {
//!     let mut rng = ChaCha8Rng::seed_from_u64(seed);
//!     let h = generate::paper_regime(&mut rng, 120, 30, 8);
//!     let out = runner.sbl(&h, &mut rng, &SblConfig::default());
//!     assert!(verify_mis(&h, &out.independent_set).is_ok());
//! }
//! // After the first solve, same-shaped solves allocate nothing new.
//! assert!(runner.workspace().fresh_allocations() > 0);
//! ```
//!
//! # Determinism contract
//!
//! Workspace reuse never influences results: for the same `(hypergraph,
//! seed, config)` — for serving-layer requests, the same `(snapshot,
//! algorithm, seed)` — a `BatchRunner` solve returns bit-identical outcomes
//! (independent set, coloring, trace, `CostTracker` totals) to the cold
//! entry point, at any thread count and regardless of what was solved
//! before. `tests/batch.rs` pins this with pinned-seed streams.
//!
//! # Relation to the serving layer
//!
//! A `BatchRunner` is the **single-shard special case** of the sharded
//! serving subsystem: every worker shard of a
//! [`ShardedRunner`](crate::serve::ShardedRunner) is exactly a `BatchRunner`
//! looping over its queue, and [`solve`](BatchRunner::solve) is the request
//! execution core both paths share. Run a stream through `BatchRunner::solve`
//! to get the sequential reference the serve suites and benches compare
//! against.

use crate::serve::{ResidentRegistry, SolveOutcome, SolveRequest};
use hypergraph::Hypergraph;
use mis_core::linear::{LinearError, LinearOutcome};
use mis_core::permutation::PermutationOutcome;
use mis_core::prelude::*;
use pram::Workspace;
use rand::Rng;

/// Runs a stream of MIS solves over one reusable [`Workspace`]: buffers and
/// engines warmed by one solve are recycled by the next. See the
/// [module docs](self).
#[derive(Default)]
pub struct BatchRunner {
    ws: Workspace,
}

impl BatchRunner {
    /// Creates a runner with an empty workspace; the first solve of each
    /// algorithm warms it up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing workspace — e.g. one checked out of a
    /// [`pram::WorkspacePool`] by a serve shard, so buffers and engines
    /// warmed by a previous generation are reused.
    pub fn from_workspace(ws: Workspace) -> Self {
        Self { ws }
    }

    /// Unwraps the runner back into its workspace (for checkin into a
    /// [`pram::WorkspacePool`]).
    pub fn into_workspace(self) -> Workspace {
        self.ws
    }

    /// Executes one serving-layer request — the single-shard solve core of
    /// the [`serve`](crate::serve) subsystem. The outcome is a pure function
    /// of `(snapshot, algorithm, seed)`; `ticket`/`shard` are left at 0 for
    /// the caller to fill in. On this sequential path
    /// [`EpochPin::Latest`](crate::serve::EpochPin) resolves *here* — the
    /// call executes immediately, so execution time *is* submission time.
    pub fn solve(&mut self, registry: &ResidentRegistry, request: &SolveRequest) -> SolveOutcome {
        crate::serve::execute(registry, request, &mut self.ws)
    }

    /// SBL (Algorithm 1) — amortized counterpart of
    /// [`sbl_mis_with`].
    pub fn sbl<R: Rng + ?Sized>(
        &mut self,
        h: &Hypergraph,
        rng: &mut R,
        config: &SblConfig,
    ) -> SblOutcome {
        sbl_mis_in(h, rng, config, &mut self.ws)
    }

    /// Beame–Luby (Algorithm 2) — amortized counterpart of
    /// [`bl_mis`].
    pub fn bl<R: Rng + ?Sized>(
        &mut self,
        h: &Hypergraph,
        rng: &mut R,
        config: &BlConfig,
    ) -> BlOutcome {
        bl_mis_in(h, rng, config, &mut self.ws)
    }

    /// KUW-style parallel search — amortized counterpart of
    /// [`kuw_mis`].
    pub fn kuw<R: Rng + ?Sized>(&mut self, h: &Hypergraph, rng: &mut R) -> KuwOutcome {
        kuw_mis_in(h, rng, &mut self.ws)
    }

    /// Sequential greedy — amortized counterpart of
    /// [`greedy_mis`].
    pub fn greedy(&mut self, h: &Hypergraph, order: Option<&[u32]>) -> GreedyOutcome {
        greedy_mis_in(h, order, &mut self.ws)
    }

    /// Random-permutation greedy — amortized counterpart of
    /// [`permutation_mis`].
    pub fn permutation<R: Rng + ?Sized>(
        &mut self,
        h: &Hypergraph,
        rng: &mut R,
    ) -> PermutationOutcome {
        permutation_mis_in(h, rng, &mut self.ws)
    }

    /// Linear-hypergraph MIS — amortized counterpart of
    /// [`linear_mis`].
    pub fn linear<R: Rng + ?Sized>(
        &mut self,
        h: &Hypergraph,
        rng: &mut R,
    ) -> Result<LinearOutcome, LinearError> {
        linear_mis_in(h, rng, &mut self.ws)
    }

    /// Read access to the underlying workspace (allocation statistics).
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Hands the workspace back for direct use with the `*_in` entry points.
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }
}
