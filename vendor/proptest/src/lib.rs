//! Offline, API-compatible subset of `proptest` for this workspace.
//!
//! Supports the property-testing surface the workspace's test suites use:
//!
//! * [`strategy::Strategy`] with `prop_map` and `prop_flat_map`;
//! * range strategies over the primitive integers, [`prelude::any`] for
//!   full-domain values, tuple strategies, and [`collection`]'s `vec` /
//!   `btree_set`;
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header) and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Differences from upstream: no shrinking, and generation is fully
//! deterministic — each test function derives its RNG stream from its own
//! name and the case index, so a failure reproduces exactly across runs and
//! machines. A `prop_assert!`/`prop_assert_eq!` failure reports the failing
//! case index (generated values are *not* printed; re-run the case to
//! inspect them); a plain `panic!`/`unwrap` inside the body escapes without
//! case information, so prefer the `prop_assert` macros in test bodies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual imports: the [`strategy::Strategy`] trait, configuration, the
/// `prop` crate alias, and `any`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// A strategy producing any value of `T` (full domain), for the
    /// primitive types [`Arbitrary`] is implemented for.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(std::marker::PhantomData)
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut crate::test_runner::TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> crate::strategy::Strategy for ArbitraryStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut crate::test_runner::TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut crate::test_runner::TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; matches one test function at a
/// time and recurses on the rest.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u64..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_sets_are_within_domain(s in prop::collection::btree_set(0u32..8, 1..=4usize)) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.iter().all(|&x| x < 8));
        }

        #[test]
        fn flat_map_chains(pair in (1usize..5).prop_flat_map(|n| {
            (0usize..n, prop::strategy::Just(n))
        })) {
            let (i, n) = pair;
            prop_assert!(i < n, "i={} n={}", i, n);
        }

        #[test]
        fn tuples_and_maps(t in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(t <= 18);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a = strat.generate(&mut crate::test_runner::TestRng::deterministic("t", 3));
        let b = strat.generate(&mut crate::test_runner::TestRng::deterministic("t", 3));
        let c = strat.generate(&mut crate::test_runner::TestRng::deterministic("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
