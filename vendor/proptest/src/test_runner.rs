//! Test configuration, deterministic RNG and case-failure plumbing.

use std::fmt;

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The deterministic generator behind every strategy: SplitMix64 seeded from
/// the test's name and case index, so each property has an independent,
/// reproducible stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 uniformly random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
