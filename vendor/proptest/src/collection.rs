//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
///
/// If the element domain is too small to reach the drawn size, the set is
/// returned once insertion stops making progress (upstream proptest rejects
/// such cases; the suites in this workspace always use feasible domains).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = target * 20 + 20;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
