//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let seed_value = self.inner.generate(rng);
        (self.f)(seed_value).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
