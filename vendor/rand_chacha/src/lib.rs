//! Offline implementation of the ChaCha8 random number generator, exposing
//! the `rand_chacha::ChaCha8Rng` API this workspace uses (`SeedableRng` with
//! 32-byte seeds plus `Clone`/`Debug`/`PartialEq`).
//!
//! The block function is the standard ChaCha construction (Bernstein) with 8
//! rounds, a 64-bit block counter and a zero 64-bit stream id, producing the
//! 16 output words of each block in order. Determinism — the property every
//! experiment and test in this workspace relies on — is exact: the stream is
//! a pure function of the seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds: fast, and still of far higher quality
/// than anything the algorithms in this workspace need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill needed".
    index: usize,
}

/// One ChaCha quarter-round over four state words held in registers.
/// Keeping the state in sixteen locals instead of an indexed array lets the
/// compiler keep the whole block function in registers (no bounds checks, no
/// spills), which roughly halves the per-block cost; the computed stream is
/// bit-identical to the indexed formulation.
macro_rules! qr {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let (i0, i1, i2, i3) = (
            0x6170_7865u32,
            0x3320_646eu32,
            0x7962_2d32u32,
            0x6b20_6574u32,
        );
        let (i4, i5, i6, i7) = (self.key[0], self.key[1], self.key[2], self.key[3]);
        let (i8, i9, i10, i11) = (self.key[4], self.key[5], self.key[6], self.key[7]);
        let (i12, i13) = (self.counter as u32, (self.counter >> 32) as u32);
        let (i14, i15) = (0u32, 0u32);
        let (mut s0, mut s1, mut s2, mut s3) = (i0, i1, i2, i3);
        let (mut s4, mut s5, mut s6, mut s7) = (i4, i5, i6, i7);
        let (mut s8, mut s9, mut s10, mut s11) = (i8, i9, i10, i11);
        let (mut s12, mut s13, mut s14, mut s15) = (i12, i13, i14, i15);
        for _ in 0..ROUNDS / 2 {
            qr!(s0, s4, s8, s12);
            qr!(s1, s5, s9, s13);
            qr!(s2, s6, s10, s14);
            qr!(s3, s7, s11, s15);
            qr!(s0, s5, s10, s15);
            qr!(s1, s6, s11, s12);
            qr!(s2, s7, s8, s13);
            qr!(s3, s4, s9, s14);
        }
        self.block = [
            s0.wrapping_add(i0),
            s1.wrapping_add(i1),
            s2.wrapping_add(i2),
            s3.wrapping_add(i3),
            s4.wrapping_add(i4),
            s5.wrapping_add(i5),
            s6.wrapping_add(i6),
            s7.wrapping_add(i7),
            s8.wrapping_add(i8),
            s9.wrapping_add(i9),
            s10.wrapping_add(i10),
            s11.wrapping_add(i11),
            s12.wrapping_add(i12),
            s13.wrapping_add(i13),
            s14.wrapping_add(i14),
            s15.wrapping_add(i15),
        ];
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words come from the current block, so one bounds
        // check covers the pair. The consumed stream (lo word first) is
        // bit-identical to the two-call formulation.
        if self.index + 2 <= 16 {
            let lo = self.block[self.index];
            let hi = self.block[self.index + 1];
            self.index += 2;
            return u64::from(lo) | (u64::from(hi) << 32);
        }
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams of different seeds look identical");
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8 with an all-zero key, zero counter and zero 64-bit nonce:
        // first keystream word of the published ChaCha8 test vector
        // (keystream bytes 3e 00 ef 2f..., little-endian word 0x2fef003e).
        // Pins the round count and state layout against accidental change.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef003e);
    }
}
