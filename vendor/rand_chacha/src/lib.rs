//! Offline implementation of the ChaCha8 random number generator, exposing
//! the `rand_chacha::ChaCha8Rng` API this workspace uses (`SeedableRng` with
//! 32-byte seeds plus `Clone`/`Debug`/`PartialEq`).
//!
//! The block function is the standard ChaCha construction (Bernstein) with 8
//! rounds, a 64-bit block counter and a zero 64-bit stream id, producing the
//! 16 output words of each block in order. Determinism — the property every
//! experiment and test in this workspace relies on — is exact: the stream is
//! a pure function of the seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds: fast, and still of far higher quality
/// than anything the algorithms in this workspace need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill needed".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = s[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams of different seeds look identical");
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8 with an all-zero key, zero counter and zero 64-bit nonce:
        // first keystream word of the published ChaCha8 test vector
        // (keystream bytes 3e 00 ef 2f..., little-endian word 0x2fef003e).
        // Pins the round count and state layout against accidental change.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef003e);
    }
}
