//! Offline implementation of the ChaCha8 random number generator, exposing
//! the `rand_chacha::ChaCha8Rng` API this workspace uses (`SeedableRng` with
//! 32-byte seeds plus `Clone`/`Debug`/`PartialEq`).
//!
//! The block function is the standard ChaCha construction (Bernstein) with 8
//! rounds, a 64-bit block counter and a zero 64-bit stream id, producing the
//! 16 output words of each block in order. Determinism — the property every
//! experiment and test in this workspace relies on — is exact: the stream is
//! a pure function of the seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha generator with 8 rounds: fast, and still of far higher quality
/// than anything the algorithms in this workspace need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill needed".
    index: usize,
}

/// One ChaCha quarter-round over four state words held in registers.
/// Keeping the state in sixteen locals instead of an indexed array lets the
/// compiler keep the whole block function in registers (no bounds checks, no
/// spills), which roughly halves the per-block cost; the computed stream is
/// bit-identical to the indexed formulation.
macro_rules! qr {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let (i0, i1, i2, i3) = (
            0x6170_7865u32,
            0x3320_646eu32,
            0x7962_2d32u32,
            0x6b20_6574u32,
        );
        let (i4, i5, i6, i7) = (self.key[0], self.key[1], self.key[2], self.key[3]);
        let (i8, i9, i10, i11) = (self.key[4], self.key[5], self.key[6], self.key[7]);
        let (i12, i13) = (self.counter as u32, (self.counter >> 32) as u32);
        let (i14, i15) = (0u32, 0u32);
        let (mut s0, mut s1, mut s2, mut s3) = (i0, i1, i2, i3);
        let (mut s4, mut s5, mut s6, mut s7) = (i4, i5, i6, i7);
        let (mut s8, mut s9, mut s10, mut s11) = (i8, i9, i10, i11);
        let (mut s12, mut s13, mut s14, mut s15) = (i12, i13, i14, i15);
        for _ in 0..ROUNDS / 2 {
            qr!(s0, s4, s8, s12);
            qr!(s1, s5, s9, s13);
            qr!(s2, s6, s10, s14);
            qr!(s3, s7, s11, s15);
            qr!(s0, s5, s10, s15);
            qr!(s1, s6, s11, s12);
            qr!(s2, s7, s8, s13);
            qr!(s3, s4, s9, s14);
        }
        self.block = [
            s0.wrapping_add(i0),
            s1.wrapping_add(i1),
            s2.wrapping_add(i2),
            s3.wrapping_add(i3),
            s4.wrapping_add(i4),
            s5.wrapping_add(i5),
            s6.wrapping_add(i6),
            s7.wrapping_add(i7),
            s8.wrapping_add(i8),
            s9.wrapping_add(i9),
            s10.wrapping_add(i10),
            s11.wrapping_add(i11),
            s12.wrapping_add(i12),
            s13.wrapping_add(i13),
            s14.wrapping_add(i14),
            s15.wrapping_add(i15),
        ];
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words come from the current block, so one bounds
        // check covers the pair. The consumed stream (lo word first) is
        // bit-identical to the two-call formulation.
        if self.index + 2 <= 16 {
            let lo = self.block[self.index];
            let hi = self.block[self.index + 1];
            self.index += 2;
            return u64::from(lo) | (u64::from(hi) << 32);
        }
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams of different seeds look identical");
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8 with an all-zero key, zero counter and zero 64-bit nonce:
        // first keystream word of the published ChaCha8 test vector
        // (keystream bytes 3e 00 ef 2f..., little-endian word 0x2fef003e).
        // Pins the round count and state layout against accidental change.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef003e);
    }

    /// Known-answer vectors for the block function: full 16-word keystream
    /// blocks at counters 0, 1 and 2 for three keys. This is the **hard
    /// oracle** any block-function rewrite (e.g. the ROADMAP's SIMD open
    /// item) must reproduce bit-for-bit — every pinned-seed expectation in
    /// the workspace transitively depends on this exact stream, so a
    /// keystream change invalidates all of them at once. The zero-key
    /// counter-0 block doubles as the published ChaCha8 test vector
    /// (keystream bytes `3e 00 ef 2f 89 5f 40 d6 7f 5b b8 e8 1f 09 a5 a1
    /// 2c 84 0e c3 ce 9a 7f 3b 18 1b e1 88 ef 71 1a 1e`, read as
    /// little-endian words below); the remaining blocks pin this
    /// implementation's stream at later counters and structured keys.
    #[test]
    fn keystream_known_answer_vectors() {
        // (key, [block at counter 0, block at counter 1, block at counter 2])
        let zero_key = [0u8; 32];
        let mut seq_key = [0u8; 32];
        for (i, b) in seq_key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let a5_key = [0xa5u8; 32];
        let vectors: [([u8; 32], [[u32; 16]; 3]); 3] = [
            (
                zero_key,
                [
                    [
                        0x2fef003e, 0xd6405f89, 0xe8b85b7f, 0xa1a5091f, 0xc30e842c, 0x3b7f9ace,
                        0x88e11b18, 0x1e1a71ef, 0x72e14c98, 0x416f21b9, 0x6753449f, 0x19566d45,
                        0xa3424a31, 0x01b086da, 0xb8fd7b38, 0x42fe0c0e,
                    ],
                    [
                        0x0dfaaed2, 0x51c1a5ea, 0x6cdb0abf, 0xada5f201, 0x1258fdc0, 0xaaa2f959,
                        0x8f0ff2dc, 0x6ba266d5, 0x38ec3250, 0x98dac5bb, 0x566f0cee, 0x652a878b,
                        0x25bf8aa0, 0xbb21eb1d, 0xd8e5564b, 0xaa681e82,
                    ],
                    [
                        0xffb1e77f, 0x9dfdcf12, 0x17f5217e, 0xffca1e50, 0xe8a3ce43, 0xcb28ebe3,
                        0x1f00d1d8, 0x87c6b568, 0xd370b955, 0x64fcdab7, 0xde9be5d3, 0x828fdcaa,
                        0x81a475a9, 0x28b531df, 0xa25faa70, 0xf90a34ba,
                    ],
                ],
            ),
            (
                seq_key,
                [
                    [
                        0x8fb21540, 0x6aab126e, 0x7b66e8d9, 0x3312c531, 0x27178ff7, 0x4fd9b290,
                        0xd72e6b32, 0xcbbebcff, 0x36ad9eff, 0x3bce895f, 0xbc55406f, 0xfd909d75,
                        0x271d838f, 0x93dfb0c7, 0x82edb9b3, 0xd656a238,
                    ],
                    [
                        0x0f6e1a76, 0x59b8b2c8, 0xaef3a9f5, 0x99750a17, 0xce23b0b0, 0x9b65d779,
                        0x3779ee32, 0x8972723e, 0x89f22f71, 0x1f640ff3, 0xf82f82cd, 0xd8ff56e6,
                        0xf8915672, 0x33b4a739, 0x5310b6a5, 0xe0ae9bd9,
                    ],
                    [
                        0xee7f7742, 0xf629b789, 0xdaf0364c, 0x486bfe14, 0x02d70964, 0x2db2343b,
                        0x712a4a36, 0x8e884f8f, 0x0f8eb127, 0x248ad10a, 0x72396f5b, 0xef83700c,
                        0xc827e37f, 0x2d768a76, 0x24307864, 0x39f6ae6d,
                    ],
                ],
            ),
            (
                a5_key,
                [
                    [
                        0x0b9e4bd7, 0xb378dff4, 0x92015d3d, 0xef3475e5, 0x54a74a27, 0xf3822468,
                        0x128f0fef, 0xaec2e0f7, 0x83ab26fd, 0x5e0072d5, 0xf071a8d6, 0x13b1ef4f,
                        0xc1d4c0be, 0x1086a67d, 0x815fce27, 0xdfbfdc53,
                    ],
                    [
                        0xda674995, 0x4114e8cd, 0xf8addd7f, 0x89fd4ead, 0x07e84a61, 0xcd198ad4,
                        0x074b35ba, 0x47b9e801, 0x40ce8f1b, 0xacebc6ae, 0xc1774b24, 0x2287b5dd,
                        0x1ab584ea, 0x8abca3ab, 0x604d67f5, 0x49e44fb3,
                    ],
                    [
                        0x33cc8bfa, 0xaee76bc9, 0x4cc320e8, 0xde355c70, 0xe7421134, 0x2d6c4f9f,
                        0x6bb5255c, 0x252ff91b, 0xafbcda47, 0xa1ca1c43, 0x444a25c6, 0x7210b5b3,
                        0xab2e7acd, 0x315ccb8a, 0xf88ce119, 0x339b5607,
                    ],
                ],
            ),
        ];
        for (key, blocks) in vectors {
            let mut rng = ChaCha8Rng::from_seed(key);
            for (counter, expected) in blocks.iter().enumerate() {
                for (i, &word) in expected.iter().enumerate() {
                    assert_eq!(
                        rng.next_u32(),
                        word,
                        "keystream mismatch: key {key:02x?}, counter {counter}, word {i}"
                    );
                }
            }
        }
    }

    /// The `next_u64` fast path must consume the same stream as two
    /// `next_u32` calls (lo word first), including across block boundaries
    /// from odd positions.
    #[test]
    fn next_u64_consumes_the_pinned_stream() {
        let mut words = ChaCha8Rng::from_seed([0u8; 32]);
        let mut pairs = ChaCha8Rng::from_seed([0u8; 32]);
        let _ = words.next_u32(); // force an odd offset on one stream
        let _ = pairs.next_u32();
        for _ in 0..40 {
            let lo = words.next_u32();
            let hi = words.next_u32();
            assert_eq!(pairs.next_u64(), u64::from(lo) | (u64::from(hi) << 32));
        }
    }
}
