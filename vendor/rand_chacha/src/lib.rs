//! Offline implementation of the ChaCha8 random number generator, exposing
//! the `rand_chacha::ChaCha8Rng` API this workspace uses (`SeedableRng` with
//! 32-byte seeds plus `Clone`/`Debug`/`PartialEq`).
//!
//! The block function is the standard ChaCha construction (Bernstein) with 8
//! rounds, a 64-bit block counter and a zero 64-bit stream id, producing the
//! 16 output words of each block in order. Determinism — the property every
//! experiment and test in this workspace relies on — is exact: the stream is
//! a pure function of the seed.
//!
//! Blocks are generated eight at a time through the [`simd`] module, which
//! picks the widest backend the host supports (AVX2 → SSE2 → portable
//! four-lane) and can be pinned to the scalar reference with the
//! `force-scalar` cargo feature or `MIS_SIMD=scalar`. Every backend
//! produces the identical keystream word order; the known-answer tests
//! below are the gate.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod simd;

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds: fast, and still of far higher quality
/// than anything the algorithms in this workspace need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14) of the *next* batch to generate.
    counter: u64,
    /// Buffered output: [`simd::BATCH_BLOCKS`] consecutive blocks in counter
    /// order. The batch size is backend-independent, so clone/equality/resume
    /// semantics do not depend on which SIMD path filled the buffer.
    buf: [u32; simd::BATCH_WORDS],
    /// Next unread word in `buf`; [`simd::BATCH_WORDS`] means "refill needed".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        simd::fill_batch(&self.key, self.counter, &mut self.buf);
        self.counter = self.counter.wrapping_add(simd::BATCH_BLOCKS as u64);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; simd::BATCH_WORDS],
            index: simd::BATCH_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= simd::BATCH_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words come from the current batch, so one bounds
        // check covers the pair. The consumed stream (lo word first) is
        // bit-identical to the two-call formulation.
        if self.index + 2 <= simd::BATCH_WORDS {
            let lo = self.buf[self.index];
            let hi = self.buf[self.index + 1];
            self.index += 2;
            return u64::from(lo) | (u64::from(hi) << 32);
        }
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams of different seeds look identical");
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8 with an all-zero key, zero counter and zero 64-bit nonce:
        // first keystream word of the published ChaCha8 test vector
        // (keystream bytes 3e 00 ef 2f..., little-endian word 0x2fef003e).
        // Pins the round count and state layout against accidental change.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef003e);
    }

    /// Known-answer vectors for the block function: full 16-word keystream
    /// blocks at counters 0, 1 and 2 for three keys. This is the **hard
    /// oracle** any block-function rewrite (e.g. the ROADMAP's SIMD open
    /// item) must reproduce bit-for-bit — every pinned-seed expectation in
    /// the workspace transitively depends on this exact stream, so a
    /// keystream change invalidates all of them at once. The zero-key
    /// counter-0 block doubles as the published ChaCha8 test vector
    /// (keystream bytes `3e 00 ef 2f 89 5f 40 d6 7f 5b b8 e8 1f 09 a5 a1
    /// 2c 84 0e c3 ce 9a 7f 3b 18 1b e1 88 ef 71 1a 1e`, read as
    /// little-endian words below); the remaining blocks pin this
    /// implementation's stream at later counters and structured keys.
    #[test]
    fn keystream_known_answer_vectors() {
        // (key, [block at counter 0, block at counter 1, block at counter 2])
        let zero_key = [0u8; 32];
        let mut seq_key = [0u8; 32];
        for (i, b) in seq_key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let a5_key = [0xa5u8; 32];
        let vectors: [([u8; 32], [[u32; 16]; 3]); 3] = [
            (
                zero_key,
                [
                    [
                        0x2fef003e, 0xd6405f89, 0xe8b85b7f, 0xa1a5091f, 0xc30e842c, 0x3b7f9ace,
                        0x88e11b18, 0x1e1a71ef, 0x72e14c98, 0x416f21b9, 0x6753449f, 0x19566d45,
                        0xa3424a31, 0x01b086da, 0xb8fd7b38, 0x42fe0c0e,
                    ],
                    [
                        0x0dfaaed2, 0x51c1a5ea, 0x6cdb0abf, 0xada5f201, 0x1258fdc0, 0xaaa2f959,
                        0x8f0ff2dc, 0x6ba266d5, 0x38ec3250, 0x98dac5bb, 0x566f0cee, 0x652a878b,
                        0x25bf8aa0, 0xbb21eb1d, 0xd8e5564b, 0xaa681e82,
                    ],
                    [
                        0xffb1e77f, 0x9dfdcf12, 0x17f5217e, 0xffca1e50, 0xe8a3ce43, 0xcb28ebe3,
                        0x1f00d1d8, 0x87c6b568, 0xd370b955, 0x64fcdab7, 0xde9be5d3, 0x828fdcaa,
                        0x81a475a9, 0x28b531df, 0xa25faa70, 0xf90a34ba,
                    ],
                ],
            ),
            (
                seq_key,
                [
                    [
                        0x8fb21540, 0x6aab126e, 0x7b66e8d9, 0x3312c531, 0x27178ff7, 0x4fd9b290,
                        0xd72e6b32, 0xcbbebcff, 0x36ad9eff, 0x3bce895f, 0xbc55406f, 0xfd909d75,
                        0x271d838f, 0x93dfb0c7, 0x82edb9b3, 0xd656a238,
                    ],
                    [
                        0x0f6e1a76, 0x59b8b2c8, 0xaef3a9f5, 0x99750a17, 0xce23b0b0, 0x9b65d779,
                        0x3779ee32, 0x8972723e, 0x89f22f71, 0x1f640ff3, 0xf82f82cd, 0xd8ff56e6,
                        0xf8915672, 0x33b4a739, 0x5310b6a5, 0xe0ae9bd9,
                    ],
                    [
                        0xee7f7742, 0xf629b789, 0xdaf0364c, 0x486bfe14, 0x02d70964, 0x2db2343b,
                        0x712a4a36, 0x8e884f8f, 0x0f8eb127, 0x248ad10a, 0x72396f5b, 0xef83700c,
                        0xc827e37f, 0x2d768a76, 0x24307864, 0x39f6ae6d,
                    ],
                ],
            ),
            (
                a5_key,
                [
                    [
                        0x0b9e4bd7, 0xb378dff4, 0x92015d3d, 0xef3475e5, 0x54a74a27, 0xf3822468,
                        0x128f0fef, 0xaec2e0f7, 0x83ab26fd, 0x5e0072d5, 0xf071a8d6, 0x13b1ef4f,
                        0xc1d4c0be, 0x1086a67d, 0x815fce27, 0xdfbfdc53,
                    ],
                    [
                        0xda674995, 0x4114e8cd, 0xf8addd7f, 0x89fd4ead, 0x07e84a61, 0xcd198ad4,
                        0x074b35ba, 0x47b9e801, 0x40ce8f1b, 0xacebc6ae, 0xc1774b24, 0x2287b5dd,
                        0x1ab584ea, 0x8abca3ab, 0x604d67f5, 0x49e44fb3,
                    ],
                    [
                        0x33cc8bfa, 0xaee76bc9, 0x4cc320e8, 0xde355c70, 0xe7421134, 0x2d6c4f9f,
                        0x6bb5255c, 0x252ff91b, 0xafbcda47, 0xa1ca1c43, 0x444a25c6, 0x7210b5b3,
                        0xab2e7acd, 0x315ccb8a, 0xf88ce119, 0x339b5607,
                    ],
                ],
            ),
        ];
        for (key, blocks) in vectors {
            let mut rng = ChaCha8Rng::from_seed(key);
            for (counter, expected) in blocks.iter().enumerate() {
                for (i, &word) in expected.iter().enumerate() {
                    assert_eq!(
                        rng.next_u32(),
                        word,
                        "keystream mismatch: key {key:02x?}, counter {counter}, word {i}"
                    );
                }
            }
        }
    }

    /// Known-answer vectors spanning one full eight-block refill batch plus
    /// the first word of the next batch. The three-block vectors above never
    /// cross a batch seam (they fit in the first refill), so this test is
    /// what pins blocks 3–7 of the wide backends and the counter hand-off
    /// from one batch to the next. Values generated with the pre-SIMD scalar
    /// implementation (commit `dd0aa12` and earlier).
    #[test]
    fn keystream_spans_full_refill_batch() {
        let mut seq_key = [0u8; 32];
        for (i, b) in seq_key.iter_mut().enumerate() {
            *b = i as u8;
        }
        // Blocks 3..8 for seq_key (blocks 0..3 are pinned above).
        let later_blocks: [[u32; 16]; 5] = [
            [
                0xfc23b459, 0xaddd39d5, 0x920d6910, 0x06414085, 0x5be364a8, 0xa3af83cb, 0x7ac00930,
                0x22e294e0, 0x5bf7bcf9, 0xce6d651d, 0x7bd1be4c, 0x21876e3e, 0xfd09bfa8, 0x86d9ffa8,
                0x262220da, 0x93b4ec3c,
            ],
            [
                0xe7168d48, 0x7fc4857e, 0x665fd6ac, 0x1e0d7192, 0xdf0e6933, 0xc6696a25, 0x3ec3f5ba,
                0x5590e6ec, 0x812bbb7a, 0x599f371b, 0x20c3b07c, 0x34ffd617, 0x505e5670, 0x980d6127,
                0x03938aa0, 0x20b507f4,
            ],
            [
                0x8f67cf6d, 0x27bae019, 0x190c1bb5, 0xfcb2779d, 0x604f893b, 0x9b95c5fc, 0x772f31bf,
                0xb7ca1da4, 0xf7840409, 0x63ea388a, 0x50769f0b, 0xab633ea2, 0xba82899c, 0xa4f3b917,
                0x3cda22f2, 0x6e70010c,
            ],
            [
                0x74f7636b, 0x94ff17e1, 0x0d2d512e, 0xdb23e7a8, 0x923308f7, 0x8ef70cb6, 0xf5d2cdc7,
                0x1add5cb1, 0x24065130, 0x578f6178, 0xa2f680eb, 0xb96e48ce, 0xdd789a02, 0xd06c45e3,
                0x3841bfb2, 0x15d0876b,
            ],
            [
                0xde98b1df, 0x18cf1d33, 0xb90099ef, 0x85d8cda4, 0x914fa0c4, 0x855b315b, 0x68c8dbd2,
                0x24ea8cbe, 0xce35be8e, 0x1e51cbd7, 0x1f20054a, 0x7820a81b, 0xf65d6aac, 0x2521c270,
                0x6b6e449e, 0x5e96eb70,
            ],
        ];
        let mut rng = ChaCha8Rng::from_seed(seq_key);
        for _ in 0..3 * 16 {
            rng.next_u32(); // blocks 0..3, already pinned elsewhere
        }
        for (blk, expected) in later_blocks.iter().enumerate() {
            for (i, &word) in expected.iter().enumerate() {
                assert_eq!(
                    rng.next_u32(),
                    word,
                    "keystream mismatch at block {}, word {i}",
                    blk + 3
                );
            }
        }
        // First word of block 8 — the first word produced by the *second*
        // refill batch, pinning the counter hand-off.
        assert_eq!(rng.next_u32(), 0xb5b3fcdf);
    }

    /// A refill batch whose counters cross the 32-bit boundary of state
    /// word 12 mid-batch (0xFFFF_FFFC..=0x1_0000_0003): the carry into word
    /// 13 must happen per lane, exactly as the scalar recurrence does it.
    /// Constructed directly at a high counter because reaching it through
    /// `from_seed` would take 2^32 blocks.
    #[test]
    fn counter_word_boundary_inside_batch() {
        let expected: [[u32; 16]; 8] = [
            [
                0x6509d9c0, 0x2c3e9c6c, 0xc701cf54, 0x76c34a3d, 0x2a2c0b5d, 0x7250f66d, 0xa66dfeed,
                0xf5381d46, 0x3b8d6146, 0xb34b5889, 0x817792b8, 0xbc4171a8, 0x2cb687b0, 0xa3d60a3e,
                0x705a6ffb, 0xeaf40798,
            ],
            [
                0xfc34a662, 0x8069594d, 0x3e3cf940, 0xc1427d5b, 0x374bf667, 0x63c4d00b, 0xe14084f2,
                0x0b5760b3, 0x2dd6019c, 0xc192c6ff, 0xc58c963b, 0x24eb4e9c, 0x954343cf, 0x5a45153c,
                0x315edccb, 0x1e79117a,
            ],
            [
                0xabae4c0c, 0x20158e63, 0x75d327a5, 0x9009a618, 0x56024c18, 0x6e3735ef, 0xcee34419,
                0xa3e2df16, 0x9283ef1b, 0x05d5df08, 0xf2028f40, 0x11efe5ca, 0xf5e16dc8, 0x4ec97958,
                0xbe210e28, 0xea2b89bf,
            ],
            [
                0xfe429a06, 0xcc5ab635, 0x2499bea9, 0x82169dd0, 0x8a55368a, 0x2a1033b6, 0x2d4d5a4f,
                0xc92a44bd, 0x62c9cff0, 0x7d513240, 0x8918aecf, 0xc828b037, 0xa88e499d, 0xbeadfa32,
                0x0443e913, 0xdcc52351,
            ],
            [
                0xbd107359, 0x9b0bf4e8, 0xf6b31c5b, 0x65a1bc35, 0xa70e3e6b, 0xa688c622, 0x6374cee0,
                0xe87868dd, 0xa9655d75, 0x52c0326c, 0x0e7a8ab8, 0x027a5594, 0x077d279c, 0x043f3bed,
                0xb74d9303, 0x22ef28ae,
            ],
            [
                0xc68b04eb, 0xab226349, 0xe0512804, 0xfd274eb3, 0xe4ede260, 0x425c5345, 0xa1aa8418,
                0x70be069b, 0x6f524030, 0x35eadae3, 0x39bf2854, 0x324d1f66, 0x7c475b78, 0xfe7176ff,
                0xb408dee8, 0x4cc54449,
            ],
            [
                0x6465cdc1, 0x1919faa7, 0xac7482f5, 0x28c0473e, 0x773ca2fa, 0xac03dd08, 0x96484d67,
                0x9144465b, 0xb5af23ce, 0x5a0901ad, 0xac20da18, 0xcea757ee, 0x55c6560d, 0xaaf7e2a5,
                0x13c1d208, 0x9c2d5430,
            ],
            [
                0x7ed57fe6, 0x45fcefa4, 0x32b81c39, 0xf864235d, 0x3e7b349f, 0xeff467b5, 0x09b62af3,
                0x79b419e0, 0xb15df63e, 0xdb011038, 0x8ffe4d5b, 0x0b827e96, 0x3fdde330, 0xc1584b90,
                0xf2a59cca, 0xdb391a2e,
            ],
        ];
        let mut rng = ChaCha8Rng {
            key: [0xa5a5_a5a5; 8], // from_seed([0xa5; 32]) little-endian
            counter: 0xFFFF_FFFC,
            buf: [0; simd::BATCH_WORDS],
            index: simd::BATCH_WORDS,
        };
        for (blk, block) in expected.iter().enumerate() {
            for (i, &word) in block.iter().enumerate() {
                assert_eq!(
                    rng.next_u32(),
                    word,
                    "keystream mismatch at boundary block {blk}, word {i}"
                );
            }
        }
    }

    /// A block far into the 64-bit counter space (0x0000_00AB_FFFF_FFFF):
    /// pins that the wide backends split the 64-bit lane counters into
    /// words 12/13 correctly when the high word is non-zero.
    #[test]
    fn high_counter_block() {
        let expected: [u32; 16] = [
            0x7cd7ac2f, 0xc30dd53e, 0xe1b7ce81, 0xcfa22e03, 0x36297f64, 0x1d173309, 0x74ba1c59,
            0xe68f3430, 0xc99587cd, 0xeb3ddc0b, 0xe9fe5bb2, 0xbd27df72, 0x90466f32, 0x646b5fb7,
            0x13ff59e0, 0x4473fbfb,
        ];
        let mut rng = ChaCha8Rng {
            key: [0; 8],
            counter: 0x0000_00AB_FFFF_FFFF,
            buf: [0; simd::BATCH_WORDS],
            index: simd::BATCH_WORDS,
        };
        for (i, &word) in expected.iter().enumerate() {
            assert_eq!(rng.next_u32(), word, "keystream mismatch at word {i}");
        }
    }

    /// The `next_u64` fast path must consume the same stream as two
    /// `next_u32` calls (lo word first), including across block boundaries
    /// from odd positions.
    #[test]
    fn next_u64_consumes_the_pinned_stream() {
        let mut words = ChaCha8Rng::from_seed([0u8; 32]);
        let mut pairs = ChaCha8Rng::from_seed([0u8; 32]);
        let _ = words.next_u32(); // force an odd offset on one stream
        let _ = pairs.next_u32();
        for _ in 0..40 {
            let lo = words.next_u32();
            let hi = words.next_u32();
            assert_eq!(pairs.next_u64(), u64::from(lo) | (u64::from(hi) << 32));
        }
    }

    /// Consume across several refill batches with a mixed u32/u64 pattern
    /// and check against the scalar batch reference — catches any seam bug
    /// between buffered batches that the block-level KATs might miss.
    #[test]
    fn stream_matches_scalar_batches_across_seams() {
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = (0xC0 ^ i) as u8;
        }
        let mut rng = ChaCha8Rng::from_seed(seed);
        let key = rng.key;
        let mut reference = Vec::new();
        for batch in 0..4u64 {
            let mut buf = [0u32; simd::BATCH_WORDS];
            simd::fill_batch_scalar(&key, batch * simd::BATCH_BLOCKS as u64, &mut buf);
            reference.extend_from_slice(&buf);
        }
        let mut taken = 0usize;
        while taken + 2 <= reference.len() {
            if taken.is_multiple_of(3) {
                assert_eq!(rng.next_u32(), reference[taken]);
                taken += 1;
            } else {
                let expected =
                    u64::from(reference[taken]) | (u64::from(reference[taken + 1]) << 32);
                assert_eq!(rng.next_u64(), expected);
                taken += 2;
            }
        }
    }
}
