//! Batched ChaCha8 block generation with SIMD backends.
//!
//! # The contract: keystream word order
//!
//! Every pinned-seed expectation in this workspace — determinism suites,
//! engine-conformance oracles, bench outcome fingerprints — transitively
//! depends on the exact `ChaCha8Rng` word stream. The contract every backend
//! in this module must honour is therefore *byte identity*: a batch filled at
//! counter `c` holds blocks `c, c+1, …, c+7` in counter order, each block
//! being the 16 output words of the standard ChaCha8 construction in order.
//! The `keystream_known_answer_vectors` test in the crate root (plus the
//! multi-block and counter-boundary vectors next to it) is the hard oracle;
//! the `backends_agree_on_random_inputs` test here checks every compiled
//! backend against the scalar reference on random inputs.
//!
//! # Why lane-per-block vectorization is exact
//!
//! ChaCha's quarter-round uses only per-word operations (wrapping add, xor,
//! rotate) — there is no cross-word carry or shuffle that could differ
//! between a scalar and a vector evaluation. The wide backends place block
//! `j`'s state word `w` in lane `j` of vector `w` (the classic multi-block
//! formulation), so each lane computes precisely the scalar recurrence for
//! its block; only the counter words 12/13 differ across lanes. The final
//! transpose stores lanes back in block-major order, reproducing the scalar
//! stream bit for bit.
//!
//! # Detection strategy
//!
//! The backend is chosen once per process (cached in a [`OnceLock`]):
//!
//! 1. the `force-scalar` cargo feature or `MIS_SIMD=scalar` in the
//!    environment pins [`Backend::Scalar`] (the pre-SIMD single-block loop);
//! 2. on `x86_64`, AVX2 is runtime-detected (8 blocks per step); SSE2 is the
//!    architectural baseline and needs no detection (4 blocks per step);
//! 3. every other target uses [`Backend::Wide4`], a portable four-lane
//!    formulation over `[u32; 4]` arrays that the compiler can
//!    auto-vectorize and that compiles everywhere.
//!
//! Intrinsics are confined to this module: the crate root stays
//! `deny(unsafe_code)` and each `unsafe` block here is a call into a
//! `#[target_feature]` kernel whose required feature is either the
//! architectural baseline (SSE2 on `x86_64`) or runtime-detected (AVX2).

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Words per ChaCha block.
pub const BLOCK_WORDS: usize = 16;
/// Blocks generated per batch refill, across *all* backends, so the buffered
/// generator state is backend-independent (equality, clone and resume behave
/// identically whether or not SIMD is in play).
pub const BATCH_BLOCKS: usize = 8;
/// Words per batch refill.
pub const BATCH_WORDS: usize = BLOCK_WORDS * BATCH_BLOCKS;

const ROUNDS: usize = 8;
const C0: u32 = 0x6170_7865;
const C1: u32 = 0x3320_646e;
const C2: u32 = 0x7962_2d32;
const C3: u32 = 0x6b20_6574;

/// One ChaCha quarter-round over four scalar state words held in locals.
/// Keeping the state in sixteen locals instead of an indexed array lets the
/// compiler keep the whole block function in registers (no bounds checks, no
/// spills); the computed stream is bit-identical to the indexed formulation.
macro_rules! qr {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

/// One ChaCha quarter-round over four *vectors* of state words, where lane
/// `j` of every vector belongs to block `j`. Works for any lane type with
/// `add`/`xor`/`rotl16`/`rotl12`/`rotl8`/`rotl7` methods, so the round
/// structure is written once and shared by the portable and `x86_64`
/// backends (macros have textual scope, reaching the submodules below).
macro_rules! wide_qr {
    ($x:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
        $x[$a] = $x[$a].add($x[$b]);
        $x[$d] = $x[$d].xor($x[$a]).rotl16();
        $x[$c] = $x[$c].add($x[$d]);
        $x[$b] = $x[$b].xor($x[$c]).rotl12();
        $x[$a] = $x[$a].add($x[$b]);
        $x[$d] = $x[$d].xor($x[$a]).rotl8();
        $x[$c] = $x[$c].add($x[$d]);
        $x[$b] = $x[$b].xor($x[$c]).rotl7();
    };
}

/// One ChaCha double round (column round + diagonal round) over a 16-vector
/// state, in the standard order.
macro_rules! wide_double_round {
    ($x:ident) => {
        wide_qr!($x, 0, 4, 8, 12);
        wide_qr!($x, 1, 5, 9, 13);
        wide_qr!($x, 2, 6, 10, 14);
        wide_qr!($x, 3, 7, 11, 15);
        wide_qr!($x, 0, 5, 10, 15);
        wide_qr!($x, 1, 6, 11, 12);
        wide_qr!($x, 2, 7, 8, 13);
        wide_qr!($x, 3, 4, 9, 14);
    };
}

/// The batch-fill implementations this build can choose from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The pre-SIMD reference: eight sequential single-block evaluations.
    /// Also what `force-scalar` / `MIS_SIMD=scalar` pin.
    Scalar,
    /// Portable four-lane formulation over `[u32; 4]` arrays; compiles on
    /// every target and auto-vectorizes where the compiler can.
    Wide4,
    /// Four blocks per step via `core::arch` SSE2 (`x86_64` baseline).
    Sse2,
    /// Eight blocks per step via `core::arch` AVX2 (runtime-detected).
    Avx2,
}

impl Backend {
    /// Stable lower-case name, used in bench artifacts and log headers.
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Wide4 => "wide4",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Blocks computed per vector step (1 for the scalar loop).
    pub const fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Wide4 | Backend::Sse2 => 4,
            Backend::Avx2 => 8,
        }
    }
}

/// True when the scalar path is pinned by the `force-scalar` cargo feature
/// or by `MIS_SIMD=scalar` in the environment (read once per process).
pub fn forced_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        cfg!(feature = "force-scalar")
            || std::env::var_os("MIS_SIMD").is_some_and(|v| v == "scalar")
    })
}

#[cfg(target_arch = "x86_64")]
fn best_arch_backend() -> Backend {
    if std::arch::is_x86_feature_detected!("avx2") {
        Backend::Avx2
    } else {
        Backend::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_arch_backend() -> Backend {
    Backend::Wide4
}

/// The backend [`fill_batch`] dispatches to, chosen once per process.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if forced_scalar() {
            Backend::Scalar
        } else {
            best_arch_backend()
        }
    })
}

/// Human-readable description of the active path, e.g. `"avx2"` or
/// `"scalar (forced)"`, for bench headers and artifacts.
pub fn active_path() -> &'static str {
    if forced_scalar() {
        "scalar (forced)"
    } else {
        backend().name()
    }
}

/// Every backend that can run on this build *and* host, scalar first.
/// Parity tests iterate this list against the scalar reference.
pub fn available_backends() -> Vec<Backend> {
    let mut list = vec![Backend::Scalar, Backend::Wide4];
    #[cfg(target_arch = "x86_64")]
    {
        list.push(Backend::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            list.push(Backend::Avx2);
        }
    }
    list
}

/// Computes one ChaCha8 block: the 16 output words for `key` at block
/// `counter` (64-bit counter in words 12/13, zero stream id in words 14/15).
/// This is the scalar reference every wide backend is tested against.
pub fn block_words(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let (i0, i1, i2, i3) = (C0, C1, C2, C3);
    let (i4, i5, i6, i7) = (key[0], key[1], key[2], key[3]);
    let (i8, i9, i10, i11) = (key[4], key[5], key[6], key[7]);
    let (i12, i13) = (counter as u32, (counter >> 32) as u32);
    let (i14, i15) = (0u32, 0u32);
    let (mut s0, mut s1, mut s2, mut s3) = (i0, i1, i2, i3);
    let (mut s4, mut s5, mut s6, mut s7) = (i4, i5, i6, i7);
    let (mut s8, mut s9, mut s10, mut s11) = (i8, i9, i10, i11);
    let (mut s12, mut s13, mut s14, mut s15) = (i12, i13, i14, i15);
    for _ in 0..ROUNDS / 2 {
        qr!(s0, s4, s8, s12);
        qr!(s1, s5, s9, s13);
        qr!(s2, s6, s10, s14);
        qr!(s3, s7, s11, s15);
        qr!(s0, s5, s10, s15);
        qr!(s1, s6, s11, s12);
        qr!(s2, s7, s8, s13);
        qr!(s3, s4, s9, s14);
    }
    [
        s0.wrapping_add(i0),
        s1.wrapping_add(i1),
        s2.wrapping_add(i2),
        s3.wrapping_add(i3),
        s4.wrapping_add(i4),
        s5.wrapping_add(i5),
        s6.wrapping_add(i6),
        s7.wrapping_add(i7),
        s8.wrapping_add(i8),
        s9.wrapping_add(i9),
        s10.wrapping_add(i10),
        s11.wrapping_add(i11),
        s12.wrapping_add(i12),
        s13.wrapping_add(i13),
        s14.wrapping_add(i14),
        s15.wrapping_add(i15),
    ]
}

/// Fills `out` with blocks `counter, counter+1, …, counter+7` (wrapping
/// per block) using the process-wide [`backend`].
pub fn fill_batch(key: &[u32; 8], counter: u64, out: &mut [u32; BATCH_WORDS]) {
    fill_batch_using(backend(), key, counter, out);
}

/// Fills `out` using a specific backend. Intended for parity tests and
/// benches; panics if `which` is not in [`available_backends`] for this
/// build and host.
pub fn fill_batch_using(
    which: Backend,
    key: &[u32; 8],
    counter: u64,
    out: &mut [u32; BATCH_WORDS],
) {
    match which {
        Backend::Scalar => fill_batch_scalar(key, counter, out),
        Backend::Wide4 => fill_batch_wide4(key, counter, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => x86::fill_batch_sse2(key, counter, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => x86::fill_batch_avx2_detected(key, counter, out),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Sse2 | Backend::Avx2 => {
            panic!("backend {:?} is not available on this target", which)
        }
    }
}

/// The scalar reference batch fill: eight sequential [`block_words`] calls.
pub fn fill_batch_scalar(key: &[u32; 8], counter: u64, out: &mut [u32; BATCH_WORDS]) {
    for (b, chunk) in out.chunks_exact_mut(BLOCK_WORDS).enumerate() {
        chunk.copy_from_slice(&block_words(key, counter.wrapping_add(b as u64)));
    }
}

/// The portable four-lane batch fill: two steps of four blocks each.
pub fn fill_batch_wide4(key: &[u32; 8], counter: u64, out: &mut [u32; BATCH_WORDS]) {
    let (lo, hi) = out.split_at_mut(BATCH_WORDS / 2);
    wide4::four_blocks(key, counter, lo);
    wide4::four_blocks(key, counter.wrapping_add(4), hi);
}

/// Portable four-lane backend over plain `[u32; 4]` arrays. Safe code only;
/// the per-lane operations are exactly the scalar recurrence, so this is
/// both the everywhere-fallback and a readable model of the intrinsic
/// backends below.
mod wide4 {
    use super::{BLOCK_WORDS, C0, C1, C2, C3, ROUNDS};

    #[derive(Clone, Copy)]
    struct W4([u32; 4]);

    impl W4 {
        #[inline(always)]
        fn splat(x: u32) -> Self {
            W4([x; 4])
        }

        #[inline(always)]
        fn add(self, o: Self) -> Self {
            W4(core::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
        }

        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            W4(core::array::from_fn(|i| self.0[i] ^ o.0[i]))
        }

        #[inline(always)]
        fn rotl16(self) -> Self {
            W4(self.0.map(|w| w.rotate_left(16)))
        }

        #[inline(always)]
        fn rotl12(self) -> Self {
            W4(self.0.map(|w| w.rotate_left(12)))
        }

        #[inline(always)]
        fn rotl8(self) -> Self {
            W4(self.0.map(|w| w.rotate_left(8)))
        }

        #[inline(always)]
        fn rotl7(self) -> Self {
            W4(self.0.map(|w| w.rotate_left(7)))
        }
    }

    /// Computes blocks `counter..counter+4` into `out` (64 words,
    /// block-major).
    pub(super) fn four_blocks(key: &[u32; 8], counter: u64, out: &mut [u32]) {
        debug_assert_eq!(out.len(), 4 * BLOCK_WORDS);
        let counters: [u64; 4] = core::array::from_fn(|j| counter.wrapping_add(j as u64));
        let init: [W4; 16] = [
            W4::splat(C0),
            W4::splat(C1),
            W4::splat(C2),
            W4::splat(C3),
            W4::splat(key[0]),
            W4::splat(key[1]),
            W4::splat(key[2]),
            W4::splat(key[3]),
            W4::splat(key[4]),
            W4::splat(key[5]),
            W4::splat(key[6]),
            W4::splat(key[7]),
            W4(counters.map(|c| c as u32)),
            W4(counters.map(|c| (c >> 32) as u32)),
            W4::splat(0),
            W4::splat(0),
        ];
        let mut x = init;
        for _ in 0..ROUNDS / 2 {
            wide_double_round!(x);
        }
        for (w, (xi, ii)) in x.iter().zip(init.iter()).enumerate() {
            let s = xi.add(*ii);
            for j in 0..4 {
                out[j * BLOCK_WORDS + w] = s.0[j];
            }
        }
    }
}

/// `x86_64` intrinsic backends. SSE2 is the architectural baseline, so its
/// kernel is sound to call unconditionally on this target; the AVX2 kernel
/// is only ever reached behind `is_x86_feature_detected!("avx2")`. The only
/// other `unsafe` here is `transmute` between vector types and same-sized
/// `u32` arrays, which is sound because both are plain-old-data with no
/// invalid bit patterns and transmute preserves the little-endian lane
/// order the stores rely on.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{BATCH_WORDS, BLOCK_WORDS, C0, C1, C2, C3, ROUNDS};
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_or_si256, _mm256_slli_epi32, _mm256_srli_epi32,
        _mm256_xor_si256, _mm_add_epi32, _mm_or_si128, _mm_slli_epi32, _mm_srli_epi32,
        _mm_xor_si128,
    };

    #[derive(Clone, Copy)]
    struct S4(__m128i);

    macro_rules! s4_rotl {
        ($name:ident, $k:literal) => {
            #[inline]
            #[target_feature(enable = "sse2")]
            fn $name(self) -> Self {
                S4(_mm_or_si128(
                    _mm_slli_epi32::<$k>(self.0),
                    _mm_srli_epi32::<{ 32 - $k }>(self.0),
                ))
            }
        };
    }

    impl S4 {
        #[inline]
        fn from_words(w: [u32; 4]) -> Self {
            // SAFETY: __m128i and [u32; 4] are both 16-byte POD types.
            S4(unsafe { core::mem::transmute::<[u32; 4], __m128i>(w) })
        }

        #[inline]
        fn to_words(self) -> [u32; 4] {
            // SAFETY: as in `from_words`.
            unsafe { core::mem::transmute::<__m128i, [u32; 4]>(self.0) }
        }

        #[inline]
        fn splat(x: u32) -> Self {
            Self::from_words([x; 4])
        }

        #[inline]
        #[target_feature(enable = "sse2")]
        fn add(self, o: Self) -> Self {
            S4(_mm_add_epi32(self.0, o.0))
        }

        #[inline]
        #[target_feature(enable = "sse2")]
        fn xor(self, o: Self) -> Self {
            S4(_mm_xor_si128(self.0, o.0))
        }

        s4_rotl!(rotl16, 16);
        s4_rotl!(rotl12, 12);
        s4_rotl!(rotl8, 8);
        s4_rotl!(rotl7, 7);
    }

    /// Computes blocks `counter..counter+4` into `out` (64 words).
    #[target_feature(enable = "sse2")]
    fn four_blocks_sse2(key: &[u32; 8], counter: u64, out: &mut [u32]) {
        let counters: [u64; 4] = core::array::from_fn(|j| counter.wrapping_add(j as u64));
        let init: [S4; 16] = [
            S4::splat(C0),
            S4::splat(C1),
            S4::splat(C2),
            S4::splat(C3),
            S4::splat(key[0]),
            S4::splat(key[1]),
            S4::splat(key[2]),
            S4::splat(key[3]),
            S4::splat(key[4]),
            S4::splat(key[5]),
            S4::splat(key[6]),
            S4::splat(key[7]),
            S4::from_words(counters.map(|c| c as u32)),
            S4::from_words(counters.map(|c| (c >> 32) as u32)),
            S4::splat(0),
            S4::splat(0),
        ];
        let mut x = init;
        for _ in 0..ROUNDS / 2 {
            wide_double_round!(x);
        }
        for (w, (xi, ii)) in x.iter().zip(init.iter()).enumerate() {
            let lanes = xi.add(*ii).to_words();
            for (j, lane) in lanes.into_iter().enumerate() {
                out[j * BLOCK_WORDS + w] = lane;
            }
        }
    }

    /// Fills an eight-block batch with two SSE2 four-block steps.
    pub(super) fn fill_batch_sse2(key: &[u32; 8], counter: u64, out: &mut [u32; BATCH_WORDS]) {
        let (lo, hi) = out.split_at_mut(BATCH_WORDS / 2);
        // SAFETY: SSE2 is part of the x86_64 baseline; every x86_64 CPU
        // executing this code has it.
        unsafe {
            four_blocks_sse2(key, counter, lo);
            four_blocks_sse2(key, counter.wrapping_add(4), hi);
        }
    }

    #[derive(Clone, Copy)]
    struct S8(__m256i);

    macro_rules! s8_rotl {
        ($name:ident, $k:literal) => {
            #[inline]
            #[target_feature(enable = "avx2")]
            fn $name(self) -> Self {
                S8(_mm256_or_si256(
                    _mm256_slli_epi32::<$k>(self.0),
                    _mm256_srli_epi32::<{ 32 - $k }>(self.0),
                ))
            }
        };
    }

    impl S8 {
        #[inline]
        fn from_words(w: [u32; 8]) -> Self {
            // SAFETY: __m256i and [u32; 8] are both 32-byte POD types.
            S8(unsafe { core::mem::transmute::<[u32; 8], __m256i>(w) })
        }

        #[inline]
        fn to_words(self) -> [u32; 8] {
            // SAFETY: as in `from_words`.
            unsafe { core::mem::transmute::<__m256i, [u32; 8]>(self.0) }
        }

        #[inline]
        fn splat(x: u32) -> Self {
            Self::from_words([x; 8])
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        fn add(self, o: Self) -> Self {
            S8(_mm256_add_epi32(self.0, o.0))
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        fn xor(self, o: Self) -> Self {
            S8(_mm256_xor_si256(self.0, o.0))
        }

        s8_rotl!(rotl16, 16);
        s8_rotl!(rotl12, 12);
        s8_rotl!(rotl8, 8);
        s8_rotl!(rotl7, 7);
    }

    /// Computes the whole eight-block batch in one AVX2 step.
    #[target_feature(enable = "avx2")]
    fn fill_batch_avx2(key: &[u32; 8], counter: u64, out: &mut [u32; BATCH_WORDS]) {
        let counters: [u64; 8] = core::array::from_fn(|j| counter.wrapping_add(j as u64));
        let init: [S8; 16] = [
            S8::splat(C0),
            S8::splat(C1),
            S8::splat(C2),
            S8::splat(C3),
            S8::splat(key[0]),
            S8::splat(key[1]),
            S8::splat(key[2]),
            S8::splat(key[3]),
            S8::splat(key[4]),
            S8::splat(key[5]),
            S8::splat(key[6]),
            S8::splat(key[7]),
            S8::from_words(counters.map(|c| c as u32)),
            S8::from_words(counters.map(|c| (c >> 32) as u32)),
            S8::splat(0),
            S8::splat(0),
        ];
        let mut x = init;
        for _ in 0..ROUNDS / 2 {
            wide_double_round!(x);
        }
        for (w, (xi, ii)) in x.iter().zip(init.iter()).enumerate() {
            let lanes = xi.add(*ii).to_words();
            for (j, lane) in lanes.into_iter().enumerate() {
                out[j * BLOCK_WORDS + w] = lane;
            }
        }
    }

    /// AVX2 batch fill; panics if the host lacks AVX2 (callers go through
    /// [`super::backend`] or [`super::available_backends`], which detect it).
    pub(super) fn fill_batch_avx2_detected(
        key: &[u32; 8],
        counter: u64,
        out: &mut [u32; BATCH_WORDS],
    ) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 backend selected on a host without AVX2"
        );
        // SAFETY: the assert above established the avx2 target feature.
        unsafe { fill_batch_avx2(key, counter, out) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every compiled-and-detected backend must reproduce the scalar batch
    /// bit for bit, on structured and on random (key, counter) inputs —
    /// including counters that wrap the 32-bit boundary of state word 12 and
    /// the 64-bit counter itself mid-batch.
    #[test]
    fn backends_agree_on_random_inputs() {
        use rand::{RngCore, SeedableRng};
        let mut inputs: Vec<([u32; 8], u64)> = vec![
            ([0; 8], 0),
            ([0xa5a5_a5a5; 8], 0xFFFF_FFFC),
            ([1; 8], u64::MAX - 3),
            ([u32::MAX; 8], u64::MAX),
        ];
        let mut rng = crate::ChaCha8Rng::seed_from_u64(0x51D_BEEF);
        for _ in 0..64 {
            let key = core::array::from_fn(|_| rng.next_u32());
            inputs.push((key, rng.next_u64()));
        }
        let backends = available_backends();
        assert!(backends.contains(&Backend::Scalar));
        for (key, counter) in inputs {
            let mut expected = [0u32; BATCH_WORDS];
            fill_batch_scalar(&key, counter, &mut expected);
            for &b in &backends {
                let mut got = [0u32; BATCH_WORDS];
                fill_batch_using(b, &key, counter, &mut got);
                assert!(
                    got == expected,
                    "backend {:?} diverges from scalar at key {key:08x?}, counter {counter:#x}",
                    b
                );
            }
            // The dispatching entry point must match whatever it picked.
            let mut via_dispatch = [0u32; BATCH_WORDS];
            fill_batch(&key, counter, &mut via_dispatch);
            assert!(via_dispatch == expected);
        }
    }

    /// The scalar batch is, definitionally, eight single blocks in counter
    /// order — pin the layout so a transpose bug cannot hide behind a
    /// backend-vs-backend comparison.
    #[test]
    fn batch_layout_is_block_major_in_counter_order() {
        let key = [0x0123_4567u32; 8];
        let counter = 0xFFFF_FFFEu64; // crosses the 32-bit boundary mid-batch
        let mut batch = [0u32; BATCH_WORDS];
        fill_batch(&key, counter, &mut batch);
        for b in 0..BATCH_BLOCKS {
            let expected = block_words(&key, counter.wrapping_add(b as u64));
            assert_eq!(&batch[b * BLOCK_WORDS..][..BLOCK_WORDS], &expected[..]);
        }
    }

    #[test]
    fn backend_metadata_is_consistent() {
        for b in available_backends() {
            assert!(!b.name().is_empty());
            assert!(b.lanes() >= 1);
        }
        // The active path is always one of the available backends (modulo
        // the "(forced)" suffix).
        let path = active_path();
        assert!(available_backends()
            .iter()
            .any(|b| path.starts_with(b.name())));
    }
}
