//! Sequence-related randomness: shuffling and random element choice.

use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, identical visitation order
    /// to `rand 0.8`: indices from the back, `swap(i, gen_range(0..=i))`).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    ((u128::from(rng.next_u64()) * bound as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Lcg(42));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Lcg(7);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [3u32, 5, 9];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
