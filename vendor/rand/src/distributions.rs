//! Uniform range sampling (the subset of `rand::distributions` this
//! workspace uses).

/// Uniform sampling over primitive ranges.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that a value can be sampled from uniformly.
    pub trait SampleRange<T> {
        /// Samples a single value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    /// Uniform `u64` in `[0, span)` via Lemire's multiply-shift. `span` must
    /// be non-zero. The bias is at most `span / 2^64`, far below anything a
    /// statistical test in this workspace can observe.
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(below(rng, span) as $t)
                }

                fn is_empty(&self) -> bool {
                    self.start >= self.end
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64/usize domain.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(below(rng, span as u64) as $t)
                }

                fn is_empty(&self) -> bool {
                    self.start() > self.end()
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }

        fn is_empty(&self) -> bool {
            self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
        }
    }
}
