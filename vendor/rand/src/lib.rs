//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dependencies are vendored as minimal re-implementations exposing
//! exactly the surface the workspace uses. This crate provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with the `rand 0.8` method names
//!   (`gen_range`, `gen_bool`, `fill`-free surface);
//! * uniform range sampling over the primitive integer types and `f64`
//!   ([`distributions::uniform::SampleRange`]);
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! `SeedableRng::seed_from_u64` reproduces the upstream PCG32-based seed
//! expansion, so `from_seed` inputs match the real crate. **Streams do not:**
//! upstream `gen_range`/`shuffle` consume the generator differently
//! (rejection sampling, u32-width draws) than this crate's single-`u64`
//! Lemire sampling, so swapping the real `rand` back in changes every seeded
//! run's outputs. Expect to re-pin seeded expectations if you swap.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod seq;

pub use distributions::uniform::SampleRange;

/// The core of a random number generator: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, which is how `R: Rng + ?Sized` callers
/// invoke these methods).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random bits scaled into [0, 1), compared against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the same PCG32 expansion the
    /// upstream `rand_core 0.6` uses, so seeded streams are compatible.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state));
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // splitmix64: good enough to exercise the range logic.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unsized_rng_callers_compile() {
        fn takes_unsized<R: crate::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = Counter(3);
        assert!(takes_unsized(&mut rng) < 10);
    }
}
