//! Order-preserving parallel iterators.
//!
//! The pipeline is eager: each adapter that carries user work (`map`,
//! `for_each`) distributes its items over up to [`crate::current_num_threads`]
//! scoped threads, preserving item order; cheap adapters and terminals fold
//! sequentially over the materialized values. This gives rayon's observable
//! semantics (deterministic, sequential-equivalent results) for the
//! operations the workspace uses, with real multi-core execution of the
//! expensive per-item closures.

use crate::current_num_threads;

/// An eager, order-preserving parallel iterator over materialized items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Splits `items` into at most `parts` contiguous runs, preserving order.
fn split_owned<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let chunk = n.div_ceil(parts);
    let mut it = items.into_iter();
    let mut out = Vec::with_capacity(parts);
    loop {
        let piece: Vec<T> = it.by_ref().take(chunk).collect();
        if piece.is_empty() {
            break;
        }
        out.push(piece);
    }
    out
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() < 2 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let chunks = split_owned(self.items, threads);
        let f = &f;
        let pieces: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    // Propagate the installed pool size into the worker so
                    // nested parallel operations stay within the pool's
                    // degree of parallelism.
                    scope.spawn(move || {
                        crate::with_num_threads(threads, || {
                            chunk.into_iter().map(f).collect::<Vec<U>>()
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect()
        });
        ParIter {
            items: pieces.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every item in parallel (order of side effects between
    /// chunks is unspecified, as with rayon).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() < 2 {
            self.items.into_iter().for_each(f);
            return;
        }
        let chunks = split_owned(self.items, threads);
        let f = &f;
        std::thread::scope(|scope| {
            for chunk in chunks {
                scope.spawn(move || {
                    crate::with_num_threads(threads, || chunk.into_iter().for_each(f))
                });
            }
        });
    }

    /// Keeps the items satisfying `pred`, preserving order.
    pub fn filter<F>(self, pred: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool,
    {
        ParIter {
            items: self.items.into_iter().filter(|x| pred(x)).collect(),
        }
    }

    /// Pairs every item with its index, preserving order.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// The maximum item, or `None` if empty.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// The number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` container, in order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator; blanket-implemented for every
/// `IntoIterator` with `Send` items (ranges, vectors, …).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Parallel views over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;

    /// Parallel iterator over contiguous `chunk_size`-sized subslices (the
    /// last may be shorter), in order.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Parallel views over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable `chunk_size`-sized subslices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;

    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn range_into_par_iter_sum() {
        let s: u64 = (0u64..1000).into_par_iter().sum();
        assert_eq!(s, 999 * 1000 / 2);
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(b, chunk)| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (b * 64 + i) as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn filter_count_max() {
        let v: Vec<u64> = (0..500).collect();
        assert_eq!(v.par_iter().filter(|&&x| x % 5 == 0).count(), 100);
        assert_eq!(v.par_iter().map(|&x| x).max(), Some(499));
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.par_iter().map(|&x| x).max(), None);
    }

    #[test]
    fn workers_inherit_pool_size() {
        // A nested parallel operation inside a worker closure must see the
        // installed pool size, not the machine default.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let seen: Vec<usize> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|_| crate::current_num_threads())
                .collect()
        });
        assert!(seen.iter().all(|&n| n == 3), "workers saw {seen:?}");
    }

    #[test]
    fn parallelism_is_bounded_by_pool() {
        // Under a 1-thread pool the map runs inline; this is mostly a
        // smoke-test that with_num_threads plumbs through.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let out: Vec<u64> = pool.install(|| (0u64..100).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out[99], 100);
    }
}
