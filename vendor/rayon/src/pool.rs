//! Scoped thread-pool configuration.
//!
//! This implementation does not keep persistent worker threads; a "pool" is
//! the *degree of parallelism* its `install` scope grants to the parallel
//! iterators, which spawn scoped threads per operation. That preserves the
//! two properties the workspace relies on: `current_num_threads()` inside
//! `install` reports the configured size, and parallel operations use at
//! most that many workers.

use std::fmt;

/// A handle granting a fixed degree of parallelism to code run under
/// [`ThreadPool::install`].
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count active and returns its result.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        crate::with_num_threads(self.threads, f)
    }

    /// The number of worker threads this pool grants.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error returned when a pool cannot be built (zero threads requested).
pub struct ThreadPoolBuildError {
    msg: String,
}

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadPoolBuildError {{ {} }}", self.msg)
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine) parallelism.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the number of worker threads; `0` means "machine default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepts (and ignores) a thread-name function, for API compatibility;
    /// this implementation names its scoped threads at spawn time.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
        // Restored afterwards.
        let outer = crate::current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn nested_installs_restore() {
        let p2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let p5 = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let (inner, outer) = p2.install(|| {
            let inner = p5.install(crate::current_num_threads);
            (inner, crate::current_num_threads())
        });
        assert_eq!(inner, 5);
        assert_eq!(outer, 2);
    }
}
