//! Offline, API-compatible subset of `rayon` for this workspace.
//!
//! The workspace builds with no crates.io access, so this crate implements
//! the slice of rayon the PRAM layer uses, with genuine multi-threading via
//! [`std::thread::scope`]:
//!
//! * [`prelude`] — `into_par_iter()` on anything iterable, `par_iter()` /
//!   `par_chunks()` / `par_chunks_mut()` on slices, and the adapters
//!   `map`, `filter`, `enumerate` with terminals `collect`, `sum`, `max`,
//!   `count`, `for_each`;
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] / [`current_num_threads`] — a
//!   scoped notion of "how many workers", honored by every parallel
//!   operation started while a pool's `install` closure runs.
//!
//! Semantics match rayon where it matters for this workspace: all adapters
//! are **order-preserving**, so `collect` equals the sequential result and
//! deterministic folds are reproducible across thread counts. `map` and
//! `for_each` distribute real work across OS threads; the cheap terminals
//! (`sum`, `max`, `count`) fold sequentially over already-computed values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;

pub mod iter;
mod pool;

pub use pool::{ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Commonly used traits: bring parallel-iterator methods into scope.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations started from this thread
/// will use: the innermost installed [`ThreadPool`]'s size, or the machine's
/// available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f` with [`current_num_threads`] reporting `n`, restoring the
/// previous value afterwards (exception-safe via a drop guard).
fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);

    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_THREADS.with(|c| c.set(prev));
        }
    }

    let _guard = Restore(CURRENT_THREADS.with(|c| c.replace(Some(n))));
    f()
}

/// Error type kept for API compatibility; pool construction in this
/// implementation only fails for zero threads.
pub struct ThreadPoolError(pub(crate) String);

impl fmt::Debug for ThreadPoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadPoolError({})", self.0)
    }
}
