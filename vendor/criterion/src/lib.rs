//! Offline, API-compatible subset of `criterion` for this workspace.
//!
//! Implements the benchmarking surface the `bench` crate uses — groups with
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a straightforward measurement loop:
//! warm up for the configured time, then time `sample_size` samples and
//! report mean and minimum per-iteration wall-clock time.
//!
//! Statistical niceties (outlier classification, HTML reports) are out of
//! scope; numbers print to stdout in a stable `group/bench: mean .. min`
//! format the experiment harness can scrape.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per binary, created by
/// [`criterion_group!`].
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(1500),
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Ends the group (prints a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier of a single benchmark: a function label and/or a parameter.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function label and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: warm-up until the configured warm-up time has
    /// elapsed, then `sample_size` timed samples (each one call), stopping
    /// early if the measurement budget is exhausted.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }
        let measure_start = Instant::now();
        self.samples.clear();
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if i >= 1 && measure_start.elapsed() > self.measurement {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("{group}/{label}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{group}/{label}: mean {mean:?}, min {min:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness-free bench targets receive cargo's test/bench flags
            // (--bench, --test, filters); a bare `--test` run means "compile
            // check only" and must not burn benchmark time.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
