//! Offline placeholder for `serde`.
//!
//! The workspace reserves `serde` in `[workspace.dependencies]` for future
//! wire formats (experiment result dumps, hypergraph interchange). No crate
//! serializes anything yet, so this placeholder only pins the trait names;
//! the `derive` feature is declared but a no-op. Swap the path dependency
//! for the real crates.io `serde` when a consumer lands.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Marker for types that can be serialized (placeholder).
pub trait Serialize {}

/// Marker for types that can be deserialized (placeholder).
pub trait Deserialize<'de>: Sized {}
